package experiments

import (
	"reflect"
	"testing"

	"repro/internal/phy"
)

// TestFrameSizes covers the warm-list derivation: declared sizes win,
// undeclared runners and unknown ids fall back to the phy default, and
// the union is sorted and deduplicated.
func TestFrameSizes(t *testing.T) {
	if got := FrameSizes("fig3-7"); !reflect.DeepEqual(got, []int{phy.DefaultFrameBytes}) {
		t.Errorf("FrameSizes(fig3-7) = %v, want [%d]", got, phy.DefaultFrameBytes)
	}
	if got := FrameSizes("fig2-2", "no-such-experiment"); !reflect.DeepEqual(got, []int{phy.DefaultFrameBytes}) {
		t.Errorf("FrameSizes with fallback ids = %v, want [%d]", got, phy.DefaultFrameBytes)
	}
	whole := FrameSizes()
	if len(whole) == 0 {
		t.Fatal("FrameSizes() over the registry is empty")
	}
	for i := 1; i < len(whole); i++ {
		if whole[i] <= whole[i-1] {
			t.Fatalf("FrameSizes() = %v is not sorted and deduplicated", whole)
		}
	}

	// A synthetic runner with declared sizes unions with the defaults.
	registry = append(registry, Runner{ID: "frames-test-synth", Frames: []int{256, 1500}})
	defer func() { registry = registry[:len(registry)-1] }()
	got := FrameSizes("frames-test-synth", "fig3-7")
	want := []int{256, phy.DefaultFrameBytes, 1500}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FrameSizes(synth, fig3-7) = %v, want %v", got, want)
	}
}
