package experiments

import (
	"reflect"
	"testing"

	"repro/internal/phy"
)

// TestFrameSizes covers the warm-list derivation: declared sizes win,
// undeclared runners and unknown ids fall back to the phy default, and
// the union is sorted and deduplicated.
func TestFrameSizes(t *testing.T) {
	if got := FrameSizes("fig3-7"); !reflect.DeepEqual(got, []int{phy.DefaultFrameBytes}) {
		t.Errorf("FrameSizes(fig3-7) = %v, want [%d]", got, phy.DefaultFrameBytes)
	}
	if got := FrameSizes("fig2-2", "no-such-experiment"); !reflect.DeepEqual(got, []int{phy.DefaultFrameBytes}) {
		t.Errorf("FrameSizes with fallback ids = %v, want [%d]", got, phy.DefaultFrameBytes)
	}
	whole := FrameSizes()
	if len(whole) == 0 {
		t.Fatal("FrameSizes() over the registry is empty")
	}
	for i := 1; i < len(whole); i++ {
		if whole[i] <= whole[i-1] {
			t.Fatalf("FrameSizes() = %v is not sorted and deduplicated", whole)
		}
	}

	// A synthetic runner with declared sizes unions with the defaults —
	// on a private registry seeded with the relevant Default entries,
	// since Default is append-only.
	reg := NewRegistry()
	f37, _ := Default.ByID("fig3-7")
	reg.MustRegister(f37)
	reg.MustRegister(Runner{ID: "frames-test-synth", Frames: []int{256, 1500}, Run: func(Config) *Report { return nil }})
	got := FrameSizes("frames-test-synth", "fig3-7")
	if !reflect.DeepEqual(got, []int{phy.DefaultFrameBytes}) {
		// Default has no synth runner: unknown ids fall back.
		t.Errorf("Default FrameSizes(synth, fig3-7) = %v, want [%d]", got, phy.DefaultFrameBytes)
	}
	got = reg.FrameSizes("frames-test-synth", "fig3-7")
	want := []int{256, phy.DefaultFrameBytes, 1500}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reg.FrameSizes(synth, fig3-7) = %v, want %v", got, want)
	}
}

// TestRegistry covers the exported Registry API: validation, duplicate
// rejection, tag lookup, id ordering, and plan publication.
func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	noop := func(Config) *Report { return nil }
	if err := reg.Register(Runner{ID: "", Run: noop}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := reg.Register(Runner{ID: "x"}); err == nil {
		t.Error("nil Run accepted")
	}
	reg.MustRegister(Runner{ID: "b", Run: noop, Tags: []string{"t1"}})
	reg.MustRegister(Runner{ID: "a", Run: noop, Tags: []string{"t1", "t2"}})
	if err := reg.Register(Runner{ID: "a", Run: noop}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if ids := reg.IDs(); !reflect.DeepEqual(ids, []string{"a", "b"}) {
		t.Errorf("IDs() = %v", ids)
	}
	if ts := reg.Tags(); !reflect.DeepEqual(ts, []string{"t1", "t2"}) {
		t.Errorf("Tags() = %v", ts)
	}
	if rs := reg.ByTag("t1"); len(rs) != 2 || rs[0].ID != "a" {
		t.Errorf("ByTag(t1) = %v", rs)
	}
	if rs := reg.ByTag("t2"); len(rs) != 1 || rs[0].ID != "a" {
		t.Errorf("ByTag(t2) = %v", rs)
	}
	if rs := reg.ByTag("nope"); len(rs) != 0 {
		t.Errorf("ByTag(nope) = %v", rs)
	}

	// Every paper experiment in Default is tagged, and the Chapter 3
	// comparisons publish the plan their trial loops declare.
	for _, r := range Default.All() {
		if len(r.Tags) == 0 {
			t.Errorf("experiment %q has no tags", r.ID)
		}
	}
	f35, ok := Default.ByID("fig3-5")
	if !ok || f35.Plan == nil {
		t.Fatal("fig3-5 missing or without a published plan")
	}
	p := f35.Plan(Config{Scale: 0.1})
	if p.Cells == 0 || p.Units != len(protoSet) {
		t.Errorf("fig3-5 plan = %+v, want %d units", p, len(protoSet))
	}
}
