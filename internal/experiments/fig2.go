package experiments

import (
	"time"

	"repro/internal/hints"
	"repro/internal/sensors"
	"repro/internal/stats"
)

func init() {
	register("fig2-2", "jerk over time: rest, move, rest", Fig2_2)
}

// Fig2_2 reproduces Figure 2-2: the jerk statistic over an experiment in
// which the device starts stationary, is moved, and returns to rest. The
// shape checks assert the paper's two claims: jerk never crosses the
// threshold at rest and frequently exceeds it while moving, and the
// derived movement hint flips within 100 ms of the ground truth.
func Fig2_2(cfg Config) *Report {
	r := &Report{
		ID:    "fig2-2",
		Title: "Jerk value over time (stationary → moving → stationary)",
		Paper: "jerk < 3 while stationary, frequently > 3 while moving; detection < 100 ms",
	}
	const restA = 20 * time.Second
	const moveLen = 40 * time.Second
	const restB = 20 * time.Second
	total := restA + moveLen + restB
	sched := sensors.Schedule{
		{Start: restA, End: restA + moveLen, Mode: sensors.Walk},
	}
	acc := sensors.NewAccelerometer(sensors.DefaultAccelConfig(), cfg.stream("fig2-2").Seed(0))
	samples := acc.Generate(sched, total)
	jerks := hints.JerkSeries(samples, hints.MovementConfig{})

	series := &stats.Series{Name: "jerk"}
	for i, j := range jerks {
		// Downsample for the chart: every 25th report (50 ms).
		if i%25 == 0 {
			series.Add(samples[i].T.Seconds(), j)
		}
	}
	r.Series = append(r.Series, series)

	// Shape check 1: rest-phase jerk below threshold (allow the warmup
	// reports and a tiny exceedance tolerance for noise tails).
	maxRest, maxMove := 0.0, 0.0
	exceedRest, moveAbove := 0, 0
	nRest, nMove := 0, 0
	for i, j := range jerks {
		t := samples[i].T
		if sched.MovingAt(t) {
			nMove++
			if j > hints.DefaultJerkThreshold {
				moveAbove++
			}
			if j > maxMove {
				maxMove = j
			}
		} else if t > time.Second && (t < restA-time.Second || t > restA+moveLen+time.Second) {
			nRest++
			if j > hints.DefaultJerkThreshold {
				exceedRest++
			}
			if j > maxRest {
				maxRest = j
			}
		}
	}
	restExceedFrac := float64(exceedRest) / float64(nRest)
	moveFrac := float64(moveAbove) / float64(nMove)
	r.AddCheck("rest-below-threshold", restExceedFrac < 0.001,
		"rest jerk max %.2f, %.4f%% of rest reports above 3", maxRest, 100*restExceedFrac)
	r.AddCheck("move-above-threshold", moveFrac > 0.10,
		"moving jerk max %.1f, %.1f%% of moving reports above 3", maxMove, 100*moveFrac)

	// Shape check 2: hint detection latency.
	det := hints.NewMovementDetector(hints.MovementConfig{})
	var rise, fall time.Duration = -1, -1
	for _, s := range samples {
		m := det.Update(s)
		if m && rise < 0 && s.T >= restA {
			rise = s.T - restA
		}
		if !m && rise >= 0 && fall < 0 && s.T >= restA+moveLen {
			fall = s.T - (restA + moveLen)
		}
	}
	r.AddCheck("rise-latency", rise >= 0 && rise <= 100*time.Millisecond,
		"movement detected %v after motion onset", rise)
	r.AddCheck("fall-detected", fall >= 0 && fall <= 500*time.Millisecond,
		"stationarity detected %v after motion end (hysteresis window 100 ms)", fall)

	r.Rows = []Row{
		{Label: "max jerk (rest)", Values: []float64{maxRest}},
		{Label: "max jerk (moving)", Values: []float64{maxMove}},
		{Label: "rise latency (ms)", Values: []float64{float64(rise.Milliseconds())}},
		{Label: "fall latency (ms)", Values: []float64{float64(fall.Milliseconds())}},
	}
	r.Columns = []string{"value"}
	return r
}
