package experiments

import (
	"time"

	"repro/internal/hints"
	"repro/internal/sensors"
)

func init() {
	register("fig2-2", "jerk over time: rest, move, rest", Fig2_2, tags("ch2", "sensors", "paper"))
}

// Fig2_2 reproduces Figure 2-2: the jerk statistic over an experiment in
// which the device starts stationary, is moved, and returns to rest. The
// shape checks assert the paper's two claims: jerk never crosses the
// threshold at rest and frequently exceeds it while moving, and the
// derived movement hint flips within 100 ms of the ground truth.
func Fig2_2(cfg Config) *Report {
	const restA = 20 * time.Second
	const moveLen = 40 * time.Second
	const restB = 20 * time.Second
	total := restA + moveLen + restB
	sched := sensors.Schedule{
		{Start: restA, End: restA + moveLen, Mode: sensors.Walk},
	}

	// The whole scenario is one deterministic trial: it derives its seed
	// from the stream, emits the chart's series and the scalar shape
	// statistics, and the finish phase renders them.
	cfg.trials("fig2-2", 1, func(i int, em *Emitter) {
		acc := sensors.NewAccelerometer(sensors.DefaultAccelConfig(), cfg.stream("fig2-2").Seed(i))
		samples := acc.Generate(sched, total)
		jerks := hints.JerkSeries(samples, hints.MovementConfig{})

		for j, jerk := range jerks {
			// Downsample for the chart: every 25th report (50 ms).
			if j%25 == 0 {
				em.Point("jerk", samples[j].T.Seconds(), jerk)
			}
		}

		// Shape statistic 1: rest-phase jerk below threshold (allow the
		// warmup reports and a tiny exceedance tolerance for noise tails).
		maxRest, maxMove := 0.0, 0.0
		exceedRest, moveAbove := 0, 0
		nRest, nMove := 0, 0
		for j, jerk := range jerks {
			t := samples[j].T
			if sched.MovingAt(t) {
				nMove++
				if jerk > hints.DefaultJerkThreshold {
					moveAbove++
				}
				if jerk > maxMove {
					maxMove = jerk
				}
			} else if t > time.Second && (t < restA-time.Second || t > restA+moveLen+time.Second) {
				nRest++
				if jerk > hints.DefaultJerkThreshold {
					exceedRest++
				}
				if jerk > maxRest {
					maxRest = jerk
				}
			}
		}
		em.Add("maxrest", maxRest)
		em.Add("maxmove", maxMove)
		em.Add("restfrac", float64(exceedRest)/float64(nRest))
		em.Add("movefrac", float64(moveAbove)/float64(nMove))

		// Shape statistic 2: hint detection latency (nanoseconds; −1
		// encodes "never detected").
		det := hints.NewMovementDetector(hints.MovementConfig{})
		var rise, fall time.Duration = -1, -1
		for _, s := range samples {
			m := det.Update(s)
			if m && rise < 0 && s.T >= restA {
				rise = s.T - restA
			}
			if !m && rise >= 0 && fall < 0 && s.T >= restA+moveLen {
				fall = s.T - (restA + moveLen)
			}
		}
		em.Add("rise", float64(rise))
		em.Add("fall", float64(fall))
	})
	if cfg.collecting() {
		return nil
	}

	r := &Report{
		ID:    "fig2-2",
		Title: "Jerk value over time (stationary → moving → stationary)",
		Paper: "jerk < 3 while stationary, frequently > 3 while moving; detection < 100 ms",
	}
	r.Series = append(r.Series, cfg.seriesCol("jerk", "jerk"))

	maxRest, maxMove := cfg.val("maxrest"), cfg.val("maxmove")
	restExceedFrac, moveFrac := cfg.val("restfrac"), cfg.val("movefrac")
	rise := time.Duration(cfg.val("rise"))
	fall := time.Duration(cfg.val("fall"))

	r.AddCheck("rest-below-threshold", restExceedFrac < 0.001,
		"rest jerk max %.2f, %.4f%% of rest reports above 3", maxRest, 100*restExceedFrac)
	r.AddCheck("move-above-threshold", moveFrac > 0.10,
		"moving jerk max %.1f, %.1f%% of moving reports above 3", maxMove, 100*moveFrac)
	r.AddCheck("rise-latency", rise >= 0 && rise <= 100*time.Millisecond,
		"movement detected %v after motion onset", rise)
	r.AddCheck("fall-detected", fall >= 0 && fall <= 500*time.Millisecond,
		"stationarity detected %v after motion end (hysteresis window 100 ms)", fall)

	r.Rows = []Row{
		{Label: "max jerk (rest)", Values: []float64{maxRest}},
		{Label: "max jerk (moving)", Values: []float64{maxMove}},
		{Label: "rise latency (ms)", Values: []float64{float64(rise.Milliseconds())}},
		{Label: "fall latency (ms)", Values: []float64{float64(fall.Milliseconds())}},
	}
	r.Columns = []string{"value"}
	return r
}
