package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/ap"
	"repro/internal/channel"
	"repro/internal/parallel"
	"repro/internal/phy"
	"repro/internal/rate"
	"repro/internal/ratesim"
	"repro/internal/scenario"
	"repro/internal/sensors"
	"repro/internal/vehicular"
)

// This file registers the city-scale scenario engine as ordinary
// experiments, so the event-driven runs shard across the fleet exactly
// like the paper reproductions: city-grid and city-handoff are each ONE
// city whose client population splits into sub-trial chunks (the
// chunk-union property proven by TestChunkUnionMatchesRun makes the
// merged report byte-identical to an unsharded run), city-contend
// couples clients through the medium and therefore runs whole trials,
// and scn-oracle is the differential suite pinning the event engine to
// the slot-driven oracles (ratesim, ap, vehicular, RunSlotted).

func init() {
	register("city-grid", "city-scale roaming on the event engine, sharded by client chunk", CityGrid,
		frames(200, 600, 1000, 1400), tags("scenario", "city"), plan(cityPlan))
	register("city-handoff", "handoff storm: fast vehicles through small cells", CityHandoff,
		frames(600), tags("scenario", "city"), plan(cityPlan))
	register("city-contend", "dense-AP contention: clients coupled through the medium", CityContend,
		frames(1400), tags("scenario", "city"))
	register("scn-oracle", "event engine vs slot-driven oracle differentials", ScnOracle,
		frames(200, 600, 1000, 1400), tags("scenario", "oracle"))
}

// citySize maps the scale knob to city dimensions: at scale 1 the grid
// is 32×32 = 1024 APs with 100,000 clients for 40 simulated seconds; at
// the golden-test scales (0.1–0.3) it shrinks to a few hundred clients
// over a few dozen APs and runs in tens of milliseconds.
func citySize(cfg Config) (side, clients int, dur time.Duration) {
	s := cfg.scale()
	side = int(32*s + 0.5)
	if side < 4 {
		side = 4
	}
	clients = int(100000*s*s + 0.5)
	if clients < 400 {
		clients = 400
	}
	dur = time.Duration(40 * s * float64(time.Second))
	if dur < 5*time.Second {
		dur = 5 * time.Second
	}
	return side, clients, dur
}

// cityChunks is the sub-trial fan-out of one city run: the client
// population splits into this many contiguous chunks, each an
// independently runnable (and shardable) work unit.
func cityChunks(cfg Config) int { return cfg.scaleInt(16, 2) }

// cityPlan publishes the decomposition on the registry so operators and
// the shard coordinator see one city cell split into chunk units.
func cityPlan(cfg Config) parallel.SubPlan {
	return parallel.SubPlan{Cells: 1, Units: cityChunks(cfg)}
}

// emitScenario flattens one chunk's integer Metrics onto the trial
// emitter. Every field is an exact small integer in float64, so the
// finish-phase sums reconstruct the int64 totals bit-exactly.
func emitScenario(em *Emitter, res scenario.Result) {
	m := res.Metrics
	em.Add("m/arrivals", float64(m.Arrivals))
	em.Add("m/attempts", float64(m.Attempts))
	em.Add("m/delivered", float64(m.Delivered))
	em.Add("m/lost", float64(m.Lost))
	em.Add("m/oor", float64(m.OutOfRange))
	em.Add("m/handoffs", float64(m.Handoffs))
	em.Add("m/airtime", float64(m.AirtimeNs))
	em.Add("m/deferred", float64(m.DeferredNs))
	em.Add("m/events", float64(res.Events))
	for k := 0; k < phy.NumRates; k++ {
		em.Add(fmt.Sprintf("m/rate%d", k), float64(m.RateCounts[k]))
	}
}

// scenarioTotals rebuilds the merged Metrics from the collectors.
func scenarioTotals(cfg Config) (scenario.Metrics, int64) {
	sum := func(name string) int64 {
		var s int64
		for _, v := range cfg.acc(name).Values() {
			s += int64(v)
		}
		return s
	}
	var m scenario.Metrics
	m.Arrivals = sum("m/arrivals")
	m.Attempts = sum("m/attempts")
	m.Delivered = sum("m/delivered")
	m.Lost = sum("m/lost")
	m.OutOfRange = sum("m/oor")
	m.Handoffs = sum("m/handoffs")
	m.AirtimeNs = sum("m/airtime")
	m.DeferredNs = sum("m/deferred")
	for k := 0; k < phy.NumRates; k++ {
		m.RateCounts[k] = sum(fmt.Sprintf("m/rate%d", k))
	}
	return m, sum("m/events")
}

// scenarioRows renders the shared report shape for the city runs.
func scenarioRows(r *Report, sc scenario.Scenario, m scenario.Metrics, events int64) {
	attempts := float64(m.Attempts) / math.Max(float64(m.Arrivals-m.OutOfRange), 1)
	var high int64
	for k := phy.Rate24; k < phy.NumRates; k++ {
		high += m.RateCounts[k]
	}
	r.Columns = []string{"value"}
	r.Rows = []Row{
		{Label: "APs", Values: []float64{float64(sc.APCount())}},
		{Label: "clients", Values: []float64{float64(sc.ClientCount())}},
		{Label: "sim seconds", Values: []float64{sc.Duration.Seconds()}},
		{Label: "packet events", Values: []float64{float64(events)}},
		{Label: "delivery rate", Values: []float64{m.DeliveryRate()}},
		{Label: "handoffs", Values: []float64{float64(m.Handoffs)}},
		{Label: "out-of-range", Values: []float64{float64(m.OutOfRange)}},
		{Label: "attempts/packet", Values: []float64{attempts}},
		{Label: "share ≥24 Mbps", Values: []float64{float64(high) / math.Max(float64(m.Attempts), 1)}},
		{Label: "airtime (s)", Values: []float64{float64(m.AirtimeNs) / 1e9}},
		{Label: "deferred (s)", Values: []float64{float64(m.DeferredNs) / 1e9}},
	}
}

// CityScenario is the headline city: a full-coverage 170 m AP grid
// (nearest AP ≤ 121 m < the 130 m radio range everywhere) carrying a
// ConCap-style mix of walking voip/web, vehicular telemetry, and static
// kiosk sensors. Exported so the facade and examples can run the same
// city the city-grid experiment reports on.
func CityScenario(cfg Config) scenario.Scenario {
	side, clients, dur := citySize(cfg)
	peds, veh := clients*60/100, clients*25/100
	return scenario.Scenario{
		Name: "city-grid",
		Grid: scenario.APGrid{Side: side, Spacing: 170},
		Herds: []scenario.Herd{
			{
				Name: "pedestrians", Clients: peds,
				Mobility: scenario.MobilityProfile{SpeedMps: 1.4, SpeedJitter: 0.3, MeanSegment: 80},
				Traffic: scenario.TrafficMix{
					{Name: "voip", Bytes: 200, Interval: 250 * time.Millisecond},
					{Name: "web", Bytes: 1400, Interval: time.Second},
				},
			},
			{
				Name: "vehicles", Clients: veh,
				Mobility: scenario.MobilityProfile{SpeedMps: 9, SpeedJitter: 1.5, MeanSegment: 400, RoadHeadings: 4, RouteJitterDeg: 8},
				Traffic:  scenario.TrafficMix{{Name: "telemetry", Bytes: 1000, Interval: 500 * time.Millisecond}},
			},
			{
				Name: "kiosks", Clients: clients - peds - veh,
				Traffic: scenario.TrafficMix{{Name: "sensor", Bytes: 600, Interval: time.Second}},
			},
		},
		Duration: dur,
		Seed:     cfg.stream("city-grid/seed").Seed(0),
	}
}

// CityGrid runs the headline city once, sharded over client chunks.
func CityGrid(cfg Config) *Report {
	sc := CityScenario(cfg)
	chunks := cityChunks(cfg)
	n := sc.ClientCount()
	cfg.subTrials("city-grid", parallel.SubPlan{Cells: 1, Units: chunks}, func(i int, em *Emitter) {
		emitScenario(em, scenario.RunChunk(sc, i*n/chunks, (i+1)*n/chunks))
	})
	if cfg.collecting() {
		return nil
	}

	m, events := scenarioTotals(cfg)
	r := &Report{
		ID:    "city-grid",
		Title: fmt.Sprintf("city-scale roaming: %d APs, %d clients, %v", sc.APCount(), sc.ClientCount(), sc.Duration),
		Paper: "event-driven engine carries ConCap-style city traffic; cost follows packet events, not APs×clients×slots",
	}
	scenarioRows(r, sc, m, events)
	r.Notes = append(r.Notes, fmt.Sprintf("one city trial sharded into %d client chunks; merged report is byte-identical to an unsharded run", chunks))
	r.AddCheck("full-coverage", m.OutOfRange == 0,
		"170 m grid spacing keeps every point within radio range; %d packets out of range", m.OutOfRange)
	r.AddCheck("delivery", m.DeliveryRate() > 0.9,
		"delivery rate %.3f over %d arrivals", m.DeliveryRate(), m.Arrivals)
	r.AddCheck("roaming", m.Handoffs > 0,
		"mobile herds handed off %d times", m.Handoffs)
	r.AddCheck("event-per-arrival", events == m.Arrivals,
		"%d engine events for %d packet arrivals", events, m.Arrivals)
	return r
}

// cityHandoffScenario shrinks the cells to 120 m and puts fast vehicles
// on them, so nearly every client crosses association boundaries
// continuously — the handoff-storm shape dense urban deployments hit.
func cityHandoffScenario(cfg Config) scenario.Scenario {
	side, clients, dur := citySize(cfg)
	clients /= 2
	if clients < 300 {
		clients = 300
	}
	return scenario.Scenario{
		Name: "city-handoff",
		Grid: scenario.APGrid{Side: side, Spacing: 120},
		Herds: []scenario.Herd{{
			Name: "vehicles", Clients: clients,
			Mobility: scenario.MobilityProfile{SpeedMps: 20, SpeedJitter: 3, MeanSegment: 500, RoadHeadings: 4, RouteJitterDeg: 5},
			Traffic:  scenario.TrafficMix{{Name: "probe", Bytes: 600, Interval: 300 * time.Millisecond}},
		}},
		Duration: dur,
		Seed:     cfg.stream("city-handoff/seed").Seed(0),
	}
}

// CityHandoff runs the handoff storm, sharded over client chunks.
func CityHandoff(cfg Config) *Report {
	sc := cityHandoffScenario(cfg)
	chunks := cityChunks(cfg)
	n := sc.ClientCount()
	cfg.subTrials("city-handoff", parallel.SubPlan{Cells: 1, Units: chunks}, func(i int, em *Emitter) {
		emitScenario(em, scenario.RunChunk(sc, i*n/chunks, (i+1)*n/chunks))
	})
	if cfg.collecting() {
		return nil
	}

	m, events := scenarioTotals(cfg)
	perClientSec := float64(m.Handoffs) / (float64(sc.ClientCount()) * sc.Duration.Seconds())
	r := &Report{
		ID:    "city-handoff",
		Title: fmt.Sprintf("handoff storm: %d small cells, %d vehicles at 20 m/s", sc.APCount(), sc.ClientCount()),
		Paper: "20 m/s vehicles on 120 m cells re-associate roughly every cell crossing (~0.17/s per client)",
	}
	scenarioRows(r, sc, m, events)
	r.Rows = append(r.Rows, Row{Label: "handoffs/client/s", Values: []float64{perClientSec}})
	r.AddCheck("storm-rate", perClientSec > 0.08,
		"handoff rate %.3f per client-second (expect ≈0.17 from 20 m/s over 120 m cells)", perClientSec)
	r.AddCheck("delivery-under-storm", m.DeliveryRate() > 0.9,
		"delivery rate %.3f while storming", m.DeliveryRate())
	r.AddCheck("event-per-arrival", events == m.Arrivals,
		"%d engine events for %d packet arrivals", events, m.Arrivals)
	return r
}

// cityContendScenario packs a dense hotspot: many heavy clients per AP
// with the shared-medium model on, so transmissions defer behind each
// other. Contention couples clients, so this one cannot chunk — each
// trial is a whole (smaller) city with its own seed.
func cityContendScenario(cfg Config, seed int64) scenario.Scenario {
	side, clients, dur := citySize(cfg)
	side /= 4
	if side < 3 {
		side = 3
	}
	clients /= 10
	if clients < 200 {
		clients = 200
	}
	return scenario.Scenario{
		Name: "city-contend",
		Grid: scenario.APGrid{Side: side, Spacing: 110},
		Herds: []scenario.Herd{{
			Name: "crowd", Clients: clients,
			Mobility: scenario.MobilityProfile{SpeedMps: 1.4, SpeedJitter: 0.3, MeanSegment: 60},
			Traffic:  scenario.TrafficMix{{Name: "web", Bytes: 1400, Interval: 150 * time.Millisecond}},
		}},
		Duration:   dur,
		Contention: true,
		Seed:       seed,
	}
}

// CityContend runs the contended hotspot as whole-city trials.
func CityContend(cfg Config) *Report {
	trials := cfg.scaleInt(3, 2)
	ss := cfg.stream("city-contend")
	sc0 := cityContendScenario(cfg, ss.Seed(0))
	cfg.trials("city-contend", trials, func(i int, em *Emitter) {
		emitScenario(em, scenario.Run(cityContendScenario(cfg, ss.Seed(i))))
	})
	if cfg.collecting() {
		return nil
	}

	m, events := scenarioTotals(cfg)
	r := &Report{
		ID:    "city-contend",
		Title: fmt.Sprintf("dense-AP contention: %d APs, %d clients/trial × %d trials", sc0.APCount(), sc0.ClientCount(), trials),
		Paper: "per-AP medium occupancy defers co-located transmissions; totals stay within a few percent of the slot-driven oracle",
	}
	scenarioRows(r, sc0, m, events)
	defPerAttempt := float64(m.DeferredNs) / math.Max(float64(m.Attempts), 1) / 1e6
	r.Rows = append(r.Rows, Row{Label: "deferral ms/attempt", Values: []float64{defPerAttempt}})
	r.AddCheck("medium-deferral", m.DeferredNs > 0,
		"crowded cells deferred %.2f s of transmissions", float64(m.DeferredNs)/1e9)
	r.AddCheck("delivery-under-load", m.DeliveryRate() > 0.5,
		"delivery rate %.3f under contention", m.DeliveryRate())
	r.AddCheck("event-per-arrival", events == m.Arrivals,
		"%d engine events for %d packet arrivals", events, m.Arrivals)
	return r
}

// oracleCase is one differential in the scn-oracle suite: run returns a
// divergence measure (0 means identical), tol is the acceptance bound
// (0 for byte-exact cases).
type oracleCase struct {
	name string
	tol  float64
	run  func(seed int64) float64
}

// oracleScenarios is the paper-scale differential set — small enough
// for the slot-driven oracle's time×clients×APs cost, varied enough to
// cover static herds, walking, vehicular route jitter, multi-class
// mixes, and coverage gaps.
func oracleScenarios(seed int64) []scenario.Scenario {
	return []scenario.Scenario{
		{
			Name: "office",
			Grid: scenario.APGrid{Side: 3, Spacing: 160},
			Herds: []scenario.Herd{{
				Name: "desks", Clients: 40,
				Traffic: scenario.TrafficMix{{Name: "web", Bytes: 1000, Interval: 200 * time.Millisecond}},
			}},
			Duration: 10 * time.Second,
			Seed:     seed,
		},
		{
			Name: "campus",
			Grid: scenario.APGrid{Side: 4, Spacing: 180},
			Herds: []scenario.Herd{
				{
					Name: "pedestrians", Clients: 30,
					Mobility: scenario.MobilityProfile{SpeedMps: 1.4, SpeedJitter: 0.3, MeanSegment: 60},
					Traffic: scenario.TrafficMix{
						{Name: "voip", Bytes: 200, Interval: 60 * time.Millisecond},
						{Name: "web", Bytes: 1400, Interval: 400 * time.Millisecond},
					},
				},
				{
					Name: "kiosks", Clients: 10,
					Traffic: scenario.TrafficMix{{Name: "telemetry", Bytes: 600, Interval: 500 * time.Millisecond}},
				},
			},
			Duration: 12 * time.Second,
			Seed:     seed + 1,
		},
		{
			Name: "taxis",
			Grid: scenario.APGrid{Side: 5, Spacing: 240}, // sparse: real coverage gaps
			Herds: []scenario.Herd{{
				Name: "taxis", Clients: 25,
				Mobility: scenario.MobilityProfile{SpeedMps: 9, SpeedJitter: 1.5, MeanSegment: 300, RoadHeadings: 4, RouteJitterDeg: 10},
				Traffic:  scenario.TrafficMix{{Name: "probe", Bytes: 1000, Interval: 100 * time.Millisecond}},
			}},
			Duration: 15 * time.Second,
			Seed:     seed + 2,
		},
	}
}

// oracleAdapter builds a fresh Chapter 3 adapter by name.
func oracleAdapter(name string, seed int64) rate.Adapter {
	switch name {
	case "HintAware":
		return rate.NewHintAware(seed)
	case "RapidSample":
		return rate.NewRapidSample()
	case "SampleRate":
		return rate.NewSampleRate(seed)
	case "RRAA":
		return rate.NewRRAA()
	case "RBAR":
		return rate.NewRBAR()
	case "CHARM":
		return rate.NewCHARM()
	}
	panic("unknown adapter " + name)
}

// oracleCases enumerates the differential suite. The case list is a
// pure function of nothing — every trial derives its inputs from its
// own seed — so the suite shards like any other trial range.
func oracleCases() []oracleCase {
	var cases []oracleCase

	// Evented vs slot-driven engine: byte-identical Metrics and event
	// counts on contention-free scenarios.
	for idx := 0; idx < 3; idx++ {
		cases = append(cases, oracleCase{
			name: "evented-vs-slotted/" + oracleScenarios(0)[idx].Name,
			run: func(seed int64) float64 {
				sc := oracleScenarios(seed)[idx]
				ev, sl := scenario.Run(sc), scenario.RunSlotted(sc)
				if ev.Metrics != sl.Metrics || ev.Events != sl.Events {
					return 1
				}
				return 0
			},
		})
	}

	// Chunk union: any disjoint chunk cover merged in order reproduces
	// the full run — the property city-grid's fleet sharding rests on.
	cases = append(cases, oracleCase{
		name: "chunk-union/campus",
		run: func(seed int64) float64 {
			sc := oracleScenarios(seed)[1]
			want := scenario.Run(sc)
			var got scenario.Metrics
			var events int64
			n := sc.ClientCount()
			const chunks = 5
			for c := 0; c < chunks; c++ {
				res := scenario.RunChunk(sc, c*n/chunks, (c+1)*n/chunks)
				got.Merge(res.Metrics)
				events += res.Events
			}
			if got != want.Metrics || events != want.Events {
				return 1
			}
			return 0
		},
	})

	// ReplayLink vs ratesim.Run: the event engine hosts the paper's
	// exact MAC loop for every Chapter 3 adapter, both workloads, on
	// mixed-mobility and vehicular traces.
	for _, proto := range []string{"HintAware", "RapidSample", "SampleRate", "RRAA", "RBAR", "CHARM"} {
		cases = append(cases, oracleCase{
			name: "replay-link/" + proto,
			run: func(seed int64) float64 {
				traces := []channel.Config{
					{
						Env:   channel.Office,
						Sched: sensors.AlternatingSchedule(8*time.Second, 4*time.Second, sensors.Walk, false),
						Total: 8 * time.Second,
						Seed:  seed,
					},
					{
						Env:   channel.Vehicular,
						Sched: sensors.Schedule{{Start: 0, End: 6 * time.Second, Mode: sensors.Vehicle}},
						Total: 6 * time.Second,
						Seed:  seed + 1,
					},
				}
				var diverged float64
				for _, tc := range traces {
					tr := channel.Generate(tc)
					for _, wl := range []ratesim.Workload{ratesim.UDP, ratesim.TCP} {
						base := ratesim.Config{Trace: tr, Workload: wl, Seed: seed + 2}
						base.Adapter = oracleAdapter(proto, seed+3)
						want := ratesim.Run(base)
						base.Adapter = oracleAdapter(proto, seed+3)
						if scenario.ReplayLink(base) != want || want.Sent == 0 {
							diverged++
						}
					}
				}
				return diverged
			},
		})
	}

	// ReplayTwoClients vs ap.RunTwoClients: every scheduler policy with
	// and without hint-aware pruning, totals and every series point.
	for _, pol := range []ap.SchedulerPolicy{ap.FrameFair, ap.TimeFair, ap.MobileFavored} {
		for _, hint := range []bool{false, true} {
			label := fmt.Sprintf("replay-ap/%v", pol)
			if hint {
				label += "+hint"
			}
			cases = append(cases, oracleCase{
				name: label,
				run: func(int64) float64 {
					cfg := ap.TwoClientConfig{Policy: pol}
					if hint {
						cfg.Prune = ap.PruneConfig{Timeout: 10 * time.Second, HintAware: true, ProbeEvery: time.Second}
					}
					want := ap.RunTwoClients(cfg)
					got := scenario.ReplayTwoClients(cfg)
					if got.Total1 != want.Total1 || got.Total2 != want.Total2 || got.PruneAt != want.PruneAt ||
						len(got.Client1.Points) != len(want.Client1.Points) || want.Total1 == 0 {
						return 1
					}
					for i := range want.Client1.Points {
						if got.Client1.Points[i] != want.Client1.Points[i] || got.Client2.Points[i] != want.Client2.Points[i] {
							return 1
						}
					}
					return 0
				},
			})
		}
	}

	// Contention couples clients, so medium-acquisition order differs
	// between the engines; the totals must still agree statistically.
	cases = append(cases, oracleCase{
		name: "contended-delta",
		tol:  0.05,
		run: func(seed int64) float64 {
			sc := oracleScenarios(seed)[1]
			sc.Contention = true
			ev, sl := scenario.Run(sc), scenario.RunSlotted(sc)
			if ev.Metrics.Arrivals != sl.Metrics.Arrivals || ev.Metrics.DeferredNs == 0 {
				return 1
			}
			rel := func(a, b int64) float64 {
				return math.Abs(float64(a)-float64(b)) / math.Max(float64(b), 1)
			}
			return math.Max(rel(ev.Metrics.Delivered, sl.Metrics.Delivered),
				rel(ev.Metrics.AirtimeNs, sl.Metrics.AirtimeNs))
		},
	})

	// Mobility vs internal/vehicular: with matched speed and segment
	// parameters the scenario road model and the vehicular stepper must
	// produce statistically indistinguishable net displacement.
	cases = append(cases, oracleCase{
		name: "mobility-vs-vehicular",
		tol:  0.15,
		run: func(seed int64) float64 {
			const walkers = 300
			dur := 30 * time.Second
			vc := vehicular.MobilityConfig{
				Area: vehicular.Area{Width: 1000, Height: 1000}, Vehicles: walkers,
				MeanSpeed: 9, SpeedJitter: 1.5, MeanSegment: 300,
				Step: time.Second, Seed: seed,
			}
			sim := vehicular.NewSimulation(vc)
			start := append([]vehicular.Vehicle(nil), sim.Vehicles()...)
			for sim.Now() < dur {
				sim.Step()
			}
			var vmean float64
			for i, v := range sim.Vehicles() {
				vmean += sim.Distance(start[i], v)
			}
			vmean /= walkers
			smean := scenario.NetDisplacement(
				scenario.MobilityProfile{SpeedMps: 9, SpeedJitter: 1.5, MeanSegment: 300},
				scenario.Area{Width: 1000, Height: 1000}, seed+1, walkers, dur)
			return math.Abs(smean-vmean) / vmean
		},
	})
	return cases
}

// ScnOracle runs the differential suite, one case per trial.
func ScnOracle(cfg Config) *Report {
	cases := oracleCases()
	ss := cfg.stream("scn-oracle")
	cfg.trials("scn-oracle", len(cases), func(i int, em *Emitter) {
		em.Add("diff/"+cases[i].name, cases[i].run(ss.Seed(i)))
	})
	if cfg.collecting() {
		return nil
	}

	r := &Report{
		ID:    "scn-oracle",
		Title: "event engine vs slot-driven oracle differentials",
		Paper: "slot-driven runners are the oracle: byte-identical where replay is exact, within tolerance where engines interleave",
	}
	r.Columns = []string{"divergence"}
	for _, c := range cases {
		v := cfg.val("diff/" + c.name)
		r.Rows = append(r.Rows, Row{Label: c.name, Values: []float64{v}})
		if c.tol == 0 {
			r.AddCheck(c.name, v == 0, "divergence %v (must be exactly 0)", v)
		} else {
			r.AddCheck(c.name, v <= c.tol, "divergence %.4f (tolerance %.2f)", v, c.tol)
		}
	}
	return r
}
