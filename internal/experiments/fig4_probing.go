package experiments

import (
	"fmt"
	"time"

	"repro/internal/channel"
	"repro/internal/mesh"
	"repro/internal/parallel"
	"repro/internal/phy"
	"repro/internal/probing"
	"repro/internal/sensors"
	"repro/internal/stats"
	"repro/internal/trace"
)

func init() {
	register("fig4-1", "delivery rate over time with movement hint", Fig4_1, tags("ch4", "probing", "paper"))
	register("fig4-2", "estimate error vs probing rate, static", Fig4_2, tags("ch4", "probing", "paper"))
	register("fig4-3", "estimate error vs probing rate, mobile", Fig4_3, tags("ch4", "probing", "paper"))
	register("fig4-4", "delivery probability by probing rate, stationary timeline", Fig4_4,
		frames(phy.DefaultFrameBytes), tags("ch4", "probing", "paper"), plan(trackingPlan))
	register("fig4-5", "delivery probability by probing rate, mobile timeline", Fig4_5,
		frames(phy.DefaultFrameBytes), tags("ch4", "probing", "paper"), plan(trackingPlan))
	register("fig4-6", "adaptive vs fixed probing on a combined trace", Fig4_6,
		frames(phy.DefaultFrameBytes), tags("ch4", "probing", "paper"), plan(fig46Plan))
	register("sec4-2", "ETX penalty of erroneous link estimates", Sec4_2, tags("ch4", "probing", "paper"))
}

// trackingPlan publishes the Figure 4-4/4-5 sub-trial grid: the
// actual-probability cell plus one cell per tracked probing rate, with
// one unit per 10 s window of the 25 s run (see trackingTrials).
func trackingPlan(Config) parallel.SubPlan {
	const total, win = 25 * time.Second, 10 * time.Second
	return parallel.SubPlan{Cells: 1 + len(trackRates), Units: int((total + win - 1) / win)}
}

// fig46Plan publishes the Figure 4-6 grid: the actual curve plus three
// scheduler strategies, one unit per 20 s window of the scaled run.
func fig46Plan(cfg Config) parallel.SubPlan {
	total := time.Duration(cfg.scaleInt(60, 40)) * time.Second
	const win = 20 * time.Second
	return parallel.SubPlan{Cells: 4, Units: int((total + win - 1) / win)}
}

// probingEnv is the marginal mesh-scale link the Chapter 4 measurements
// study: a link weak enough that even 6 Mbps delivery fluctuates. The
// paper's probing experiments use the same stationary and human/mobile
// setups as Chapter 3 but at mesh link distances.
func probingEnv() channel.Environment {
	e := channel.Office.WithBaseSNR(9)
	e.Name = "mesh-link"
	e.ShadowSigma = 1.5
	e.StaticFadeRate = 0.1
	e.StaticFadeDepth = 4
	// A walker on a long mesh link shadows the path on a seconds
	// timescale; this is what makes the mobile delivery probability jump
	// 20%+ from second to second (Figure 4-1) while the static link
	// stays flat.
	e.WalkShadowSigma = 11
	e.WalkShadowTau = 5 * time.Second
	// At the robust 6 Mbps probe rate the walking-scale shadowing is the
	// variation that matters; fast fading decorrelates too quickly to be
	// visible through 10-probe windows and is exercised by the Chapter 3
	// experiments instead.
	e.CoherenceTime = 5 * time.Second
	return e
}

// probingRates is the sweep of Figures 4-2/4-3 in probes per second.
var probingRates = []float64{0.1, 0.2, 0.5, 1, 2, 5, 10}

// Collector-key builders shared by the trial phases that emit and the
// finish phases that read, so the two sides cannot drift apart.
func errRateKey(label string, rate float64) string { return fmt.Sprintf("fig4-err/%s/%g", label, rate) }
func trackKey(rate float64) string                 { return fmt.Sprintf("track/%g", rate) }
func trackErrKey(rate float64) string              { return fmt.Sprintf("trackerr/%g", rate) }

// Fig4_1 reproduces Figure 4-1: packet delivery rate for 6 Mbps packets
// over time on a trace that alternates static and mobile phases, with
// the movement hint overlaid. The shape claim: motion makes the
// per-second delivery ratio jump by more than 20% from second to second.
// The figure plots one trace; the checks aggregate the jump statistics
// over several independent traces so the claim does not ride on one
// realization of the slow shadowing process.
func Fig4_1(cfg Config) *Report {
	total := time.Duration(cfg.scaleInt(140, 60)) * time.Second
	sched := sensors.AlternatingSchedule(total, 20*time.Second, sensors.Walk, false)
	n := cfg.scaleInt(8, 4)
	traceSeeds := cfg.stream("fig4-1/traces")
	probeSeeds := cfg.stream("fig4-1/probes")

	// Each trial emits its jump statistics; trial 0 additionally emits
	// the figure's per-second delivery curve.
	var pool channel.TracePool
	cfg.trials("fig4-1", n, func(rep int, em *Emitter) {
		tr := pool.Generate(channel.Config{Env: probingEnv(), Sched: sched, Total: total, Seed: traceSeeds.Seed(rep)})
		defer pool.Put(tr)
		// 200 probes/s reference stream bucketed per second, as the paper
		// buckets ~200 packets per bit rate per second.
		stream := probing.CollectStream(tr, probing.ReferenceRate, probeSeeds.Seed(rep))
		raw := &stats.Series{Name: "delivery ratio"}
		for _, p := range stream.Probes {
			v := 0.0
			if p.OK {
				v = 1
			}
			raw.Add(p.At.Seconds(), v)
		}
		perSec := raw.Bucketed(1)
		if rep == 0 {
			for _, p := range perSec.Points {
				em.Point("persec", p.X, p.Y)
			}
		}
		// Jumps per phase: |Δ delivery| between adjacent seconds.
		var sumStatic, sumMobile float64
		var nStatic, nMobile, bigStatic, bigMobile int
		for i := 1; i < perSec.Len(); i++ {
			t := time.Duration(perSec.Points[i].X * float64(time.Second))
			d := perSec.Points[i].Y - perSec.Points[i-1].Y
			if d < 0 {
				d = -d
			}
			if sched.MovingAt(t) && sched.MovingAt(t-time.Second) {
				sumMobile += d
				nMobile++
				if d > 0.2 {
					bigMobile++
				}
			} else if !sched.MovingAt(t) && !sched.MovingAt(t-time.Second) {
				sumStatic += d
				nStatic++
				if d > 0.2 {
					bigStatic++
				}
			}
		}
		em.Add("sumStatic", sumStatic)
		em.Add("sumMobile", sumMobile)
		em.Add("nStatic", float64(nStatic))
		em.Add("nMobile", float64(nMobile))
		em.Add("bigStatic", float64(bigStatic))
		em.Add("bigMobile", float64(bigMobile))
	})
	if cfg.collecting() {
		return nil
	}

	r := &Report{
		ID:    "fig4-1",
		Title: "Delivery rate (6 Mbps) over time and movement",
		Paper: "delivery ratio fluctuates >20%/s only while the movement hint is raised",
	}
	hint := &stats.Series{Name: "movement hint"}
	for t := time.Duration(0); t < total; t += time.Second {
		v := 0.0
		if sched.MovingAt(t) {
			v = 1
		}
		hint.Add(t.Seconds(), v)
	}
	r.Series = append(r.Series, cfg.seriesCol("persec", "delivery ratio (1 s buckets)"), hint)

	// Sum the per-trial statistics in trial order (the accumulators
	// preserve it), reproducing the serial aggregation exactly.
	sum := func(name string) float64 {
		total := 0.0
		for _, v := range cfg.acc(name).Values() {
			total += v
		}
		return total
	}
	meanStatic := sum("sumStatic") / sum("nStatic")
	meanMobile := sum("sumMobile") / sum("nMobile")
	bigStatic, bigMobile := sum("bigStatic"), sum("bigMobile")
	r.Columns = []string{"value"}
	r.Rows = []Row{
		{Label: "mean |Δ|/s static", Values: []float64{meanStatic}},
		{Label: "mean |Δ|/s mobile", Values: []float64{meanMobile}},
		{Label: ">20% jumps static", Values: []float64{bigStatic}},
		{Label: ">20% jumps mobile", Values: []float64{bigMobile}},
	}
	r.AddCheck("mobile-fluctuates-more", meanMobile > 2*meanStatic,
		"second-to-second jumps: mobile %.3f vs static %.3f (%d traces)", meanMobile, meanStatic, n)
	r.AddCheck("mobile-20pct-jumps", bigMobile > 3*bigStatic,
		">20%% jumps: mobile %.0f vs static %.0f (%d traces)", bigMobile, bigStatic, n)
	return r
}

// errVsRateTrials runs the trial phase of the Figures 4-2/4-3 analysis
// for one mobility mode: each trace is one trial deriving its trace and
// probe seeds by global trial index and emitting the per-rate estimate
// errors into "fig4-err/<label>/<rate>" accumulators.
func errVsRateTrials(cfg Config, mode sensors.MobilityMode, label string) {
	n := cfg.scaleInt(20, 5) // the paper collects 20 traces per case
	total := time.Duration(cfg.scaleInt(180, 120)) * time.Second
	traces := cfg.stream("fig4-err/" + label + "/traces")
	probes := cfg.stream("fig4-err/" + label + "/probes")
	// Per-trial traces recycle through a pool (they are long: 2–3 min of
	// slots each) so the fan-out is not throttled by allocation.
	var pool channel.TracePool
	cfg.trials("fig4-err/"+label, n, func(rep int, em *Emitter) {
		sched := sensors.Schedule{{Start: 0, End: total, Mode: mode}}
		tr := pool.Generate(channel.Config{Env: probingEnv(), Sched: sched, Total: total,
			Seed: traces.Seed(rep)})
		defer pool.Put(tr)
		for rate, e := range probing.ErrorVsRate(tr, probingRates, 10, probes.Seed(rep)) {
			em.Add(errRateKey(label, rate), e)
		}
	})
}

// errVsRateMeans reads the merged per-rate error accumulators back.
func errVsRateMeans(cfg Config, label string) map[float64]float64 {
	out := make(map[float64]float64, len(probingRates))
	for _, rate := range probingRates {
		out[rate] = cfg.acc(errRateKey(label, rate)).Mean()
	}
	return out
}

func errReport(r *Report, errs map[float64]float64) *stats.Series {
	s := &stats.Series{Name: "mean |error|"}
	r.Columns = []string{"mean error"}
	for _, rate := range probingRates {
		s.Add(rate, errs[rate])
		r.Rows = append(r.Rows, Row{Label: fmt.Sprintf("%.1f probes/s", rate), Values: []float64{errs[rate]}})
	}
	r.Series = append(r.Series, s)
	return s
}

// Fig4_2 reproduces Figure 4-2: estimate error versus probing rate for
// the static case. Paper: even 0.1 probes/s keeps the error near 11%.
func Fig4_2(cfg Config) *Report {
	errVsRateTrials(cfg, sensors.Static, "static")
	if cfg.collecting() {
		return nil
	}

	r := &Report{
		ID:    "fig4-2",
		Title: "Estimate error vs probing rate (static)",
		Paper: "error ≈ 11% at 0.1 probes/s; ≤ ~5% by 0.5 probes/s",
	}
	errs := errVsRateMeans(cfg, "static")
	errReport(r, errs)
	r.AddCheck("low-error-at-low-rate", errs[0.1] < 0.15,
		"error at 0.1 probes/s = %.3f (paper ≈ 0.11)", errs[0.1])
	r.AddCheck("error-5pct-by-0.5", errs[0.5] < 0.08,
		"error at 0.5 probes/s = %.3f (paper ≈ 0.05)", errs[0.5])
	return r
}

// Fig4_3 reproduces Figure 4-3: the same sweep for the mobile case.
// Paper: >35% error at 0.5 probes/s, ~10% needs 5 probes/s, 5% needs 10.
func Fig4_3(cfg Config) *Report {
	errVsRateTrials(cfg, sensors.Walk, "mobile")
	// The factor-of-20 headline needs the static sweep too.
	errVsRateTrials(cfg, sensors.Static, "static")
	if cfg.collecting() {
		return nil
	}

	r := &Report{
		ID:    "fig4-3",
		Title: "Estimate error vs probing rate (mobile)",
		Paper: ">35% error at 0.5 probes/s; ~10% at 5 probes/s; 5% needs 10 probes/s (20× the static rate)",
	}
	errs := errVsRateMeans(cfg, "mobile")
	errReport(r, errs)
	r.AddCheck("high-error-at-low-rate", errs[0.5] > 0.2,
		"error at 0.5 probes/s = %.3f (paper > 0.35)", errs[0.5])
	r.AddCheck("error-drops-at-high-rate", errs[10] < errs[0.5]/2,
		"error at 10 probes/s = %.3f vs %.3f at 0.5", errs[10], errs[0.5])

	// The factor-of-20 headline: compare the probing rate each case
	// needs to reach a 10% error.
	static := errVsRateMeans(cfg, "static")
	needRate := func(errs map[float64]float64, target float64) float64 {
		for _, rate := range probingRates {
			if errs[rate] <= target {
				return rate
			}
		}
		return probingRates[len(probingRates)-1]
	}
	sRate, mRate := needRate(static, 0.10), needRate(errs, 0.10)
	factor := mRate / sRate
	r.Notes = append(r.Notes, fmt.Sprintf("probing rate for ≤10%% error: static %.1f/s, mobile %.1f/s (factor %.0fx)", sRate, mRate, factor))
	r.AddCheck("factor-20-gap", factor >= 10,
		"mobile needs %.0fx the static probing rate for 10%% error (paper ~20-25x)", factor)
	return r
}

// trackRates are the probing rates of the Figure 4-4/4-5 timelines.
var trackRates = []float64{1, 5, 10}

// windowOf maps a sample time to its index among nWin time windows of
// width win (the last window absorbs any tail past the grid).
func windowOf(at time.Duration, win time.Duration, nWin int) int {
	w := int(at / win)
	if w >= nWin {
		w = nWin - 1
	}
	return w
}

// trackingTrials runs the Figure 4-4/4-5 timeline as a sub-trial grid
// over one shared 25 s trace: cell 0 emits the actual-probability
// curve, and each tracked probing rate is a cell whose units are time
// windows of the run. A window unit replays the scheduler run from
// t = 0 — the run is a pure function of (trace, seed), so the prefix
// replay reconstructs the estimator and RNG state the window starts
// with — and emits only the samples its window owns. Windows are
// visited in trial order, so every collector receives its samples in
// time order, exactly as the old single-trial loop emitted them; the
// replays are hundreds of probes while the shared trace generation is
// memoized per process, so fanning the grid moves real work.
func trackingTrials(cfg Config, mode sensors.MobilityMode, seedOff int64, label string) {
	const total = 25 * time.Second
	const win = 10 * time.Second
	nWin := int((total + win - 1) / win)
	plan := parallel.SubPlan{Cells: 1 + len(trackRates), Units: nWin}
	var pool channel.TracePool
	prov := newTraceProvider(cfg, &pool, plan.Trials(), plan.Trials(), func(int) channel.Config {
		sched := sensors.Schedule{{Start: 0, End: total, Mode: mode}}
		return channel.Config{Env: probingEnv(), Sched: sched, Total: total, Seed: cfg.Seed + seedOff}
	})
	cfg.subTrials(label, plan, func(idx int, em *Emitter) {
		cell, w := plan.Cell(idx)
		tr := prov.acquire(0)
		defer prov.release(0)
		if cell == 0 {
			if w == 0 {
				for t := time.Duration(0); t < total; t += 250 * time.Millisecond {
					em.Point("actual", t.Seconds(), tr.WindowProb(t, probing.ActualWindow, probing.ProbeRate))
				}
			}
			return
		}
		rate := trackRates[cell-1]
		res := probing.RunScheduler(tr, &probing.FixedScheduler{PerSecond: rate}, 10, cfg.Seed+seedOff+int64(rate))
		// Skip the window-fill transient (10 probes).
		fill := time.Duration(float64(10*time.Second) / rate)
		for _, smp := range res.Samples {
			if windowOf(smp.At, win, nWin) != w {
				continue
			}
			em.Point(trackKey(rate), smp.At.Seconds(), smp.Observed)
			if smp.At > fill {
				em.Add(trackErrKey(rate), smp.Error())
			}
		}
	})
}

// trackingReport renders the timeline series and the mean-error rows,
// returning the per-rate errors for the figure-specific checks.
func trackingReport(cfg Config, r *Report) map[float64]float64 {
	r.Series = append(r.Series, cfg.seriesCol("actual", "actual"))
	meanErr := map[float64]float64{}
	for _, rate := range trackRates {
		name := fmt.Sprintf("%.0f probe/s", rate)
		r.Series = append(r.Series, cfg.seriesCol(trackKey(rate), name))
		// Per-sample errors absorb in window (= time) order, so this mean
		// sums the same values in the same order as the old single-trial
		// emission.
		meanErr[rate] = cfg.acc(trackErrKey(rate)).Mean()
	}
	r.Columns = []string{"mean error"}
	for _, rate := range trackRates {
		r.Rows = append(r.Rows, Row{Label: fmt.Sprintf("%.0f probe/s", rate), Values: []float64{meanErr[rate]}})
	}
	return meanErr
}

// Fig4_4 reproduces Figure 4-4: in the stationary trace every probing
// rate tracks the actual delivery probability closely.
func Fig4_4(cfg Config) *Report {
	trackingTrials(cfg, sensors.Static, 301, "fig4-4")
	if cfg.collecting() {
		return nil
	}

	r := &Report{
		ID:    "fig4-4",
		Title: "Delivery probability by probing rate (stationary 25 s trace)",
		Paper: "all three probing rates track the actual probability closely",
	}
	meanErr := trackingReport(cfg, r)
	r.AddCheck("static-1ps-tracks", meanErr[1] < 0.12,
		"mean error at 1 probe/s = %.3f (close tracking)", meanErr[1])
	r.AddCheck("static-10ps-tracks", meanErr[10] < 0.12,
		"mean error at 10 probes/s = %.3f", meanErr[10])
	return r
}

// Fig4_5 reproduces Figure 4-5: in the mobile trace only the high
// probing rates track; 1 probe/s errs substantially in both directions.
func Fig4_5(cfg Config) *Report {
	trackingTrials(cfg, sensors.Walk, 401, "fig4-5")
	if cfg.collecting() {
		return nil
	}

	r := &Report{
		ID:    "fig4-5",
		Title: "Delivery probability by probing rate (mobile 25 s trace)",
		Paper: "only 5–10 probes/s track; 1 probe/s errs substantially both ways",
	}
	meanErr := trackingReport(cfg, r)
	r.AddCheck("mobile-1ps-lags", meanErr[1] > 0.18,
		"mean error at 1 probe/s = %.3f (substantial)", meanErr[1])
	r.AddCheck("mobile-10ps-better", meanErr[10] < 0.65*meanErr[1],
		"mean error: 10 probes/s %.3f ≪ 1 probe/s %.3f", meanErr[10], meanErr[1])
	return r
}

// Fig4_6 reproduces Figure 4-6: on a combined static+mobile trace, the
// hint-adaptive scheduler (1 ↔ 10 probes/s with a 1 s linger) tracks the
// actual delivery probability while the fixed 1 probe/s strategy lags by
// seconds — at a fraction of the fast scheduler's bandwidth.
func Fig4_6(cfg Config) *Report {
	total := time.Duration(cfg.scaleInt(60, 40)) * time.Second
	sched := sensors.AlternatingSchedule(total, 10*time.Second, sensors.Walk, false)

	// The run is a sub-trial grid over one shared trace: cell 0 emits
	// the actual-probability curve, cells 1–3 are the three scheduler
	// strategies, and each strategy cell's units are 20 s time windows.
	// A window unit replays its strategy from t = 0 — the stateful hint
	// scheduler's movingTill/linger state is a pure function of the
	// (trace, seed) prefix, so the replay carries the state the window
	// starts with — and emits only its window's samples, per-sample
	// mobile-phase errors, and probe count. Finish sums/means them in
	// window order, reproducing the old single-trial statistics exactly.
	const fig46Win = 20 * time.Second
	nWin := int((total + fig46Win - 1) / fig46Win)
	type strategy struct {
		series string // sample series collector ("" = none)
		err    string
		probes string
		run    func(tr *trace.FateTrace) probing.RunResult
	}
	strategies := []strategy{
		{"adaptive", "adErr", "adProbes", func(tr *trace.FateTrace) probing.RunResult {
			hintFn := probing.MovementHintFn(tr, 100*time.Millisecond)
			return probing.RunScheduler(tr, &probing.HintScheduler{MovingFn: hintFn}, 10, cfg.Seed+502)
		}},
		{"fixed", "fxErr", "fxProbes", func(tr *trace.FateTrace) probing.RunResult {
			return probing.RunScheduler(tr, &probing.FixedScheduler{PerSecond: 1}, 10, cfg.Seed+503)
		}},
		{"", "fastErr", "fastProbes", func(tr *trace.FateTrace) probing.RunResult {
			return probing.RunScheduler(tr, &probing.FixedScheduler{PerSecond: 10}, 10, cfg.Seed+504)
		}},
	}
	plan := parallel.SubPlan{Cells: 1 + len(strategies), Units: nWin}
	var pool channel.TracePool
	prov := newTraceProvider(cfg, &pool, plan.Trials(), plan.Trials(), func(int) channel.Config {
		return channel.Config{Env: probingEnv(), Sched: sched, Total: total, Seed: cfg.Seed + 501}
	})
	cfg.subTrials("fig4-6", plan, func(idx int, em *Emitter) {
		cell, w := plan.Cell(idx)
		tr := prov.acquire(0)
		defer prov.release(0)
		if cell == 0 {
			if w == 0 {
				for t := time.Duration(0); t < total; t += 500 * time.Millisecond {
					em.Point("actual", t.Seconds(), tr.WindowProb(t, probing.ActualWindow, probing.ProbeRate))
				}
			}
			return
		}
		st := strategies[cell-1]
		res := st.run(tr)
		probes := 0
		for _, smp := range res.Samples {
			if windowOf(smp.At, fig46Win, nWin) != w {
				continue
			}
			probes++
			if st.series != "" {
				em.Point(st.series, smp.At.Seconds(), smp.Observed)
			}
			// Errors are compared on the mobile phases, where the
			// strategies differ.
			if tr.MovingAt(smp.At) {
				em.Add(st.err, smp.Error())
			}
		}
		// Every probe yields one sample, so the per-window sample counts
		// sum to the run's exact probe total.
		em.Add(st.probes, float64(probes))
	})
	if cfg.collecting() {
		return nil
	}

	r := &Report{
		ID:    "fig4-6",
		Title: "Adaptive vs fixed probing on a combined trace",
		Paper: "adaptive stays accurate through movement; fixed 1 probe/s lags multiple seconds",
	}
	hint := &stats.Series{Name: "hint"}
	for t := time.Duration(0); t < total; t += 500 * time.Millisecond {
		v := 0.0
		if sched.MovingAt(t) {
			v = 1
		}
		hint.Add(t.Seconds(), v)
	}
	r.Series = append(r.Series,
		cfg.seriesCol("actual", "actual"),
		cfg.seriesCol("adaptive", "adaptive"),
		cfg.seriesCol("fixed", "1 probe/s"),
		hint)

	sum := func(name string) float64 {
		total := 0.0
		for _, v := range cfg.acc(name).Values() {
			total += v
		}
		return total
	}
	adErr, fxErr, fastErr := cfg.acc("adErr").Mean(), cfg.acc("fxErr").Mean(), cfg.acc("fastErr").Mean()
	adProbes, fxProbes, fastProbes := sum("adProbes"), sum("fxProbes"), sum("fastProbes")
	r.Columns = []string{"mobile err", "probes"}
	r.Rows = []Row{
		{Label: "adaptive", Values: []float64{adErr, adProbes}},
		{Label: "fixed 1/s", Values: []float64{fxErr, fxProbes}},
		{Label: "fixed 10/s", Values: []float64{fastErr, fastProbes}},
	}
	r.AddCheck("adaptive-more-accurate", adErr < 0.7*fxErr,
		"mobile-phase error: adaptive %.3f vs fixed-1/s %.3f", adErr, fxErr)
	r.AddCheck("adaptive-close-to-fast", adErr < 1.5*fastErr+0.02,
		"adaptive %.3f ≈ always-fast %.3f", adErr, fastErr)
	r.AddCheck("adaptive-saves-bandwidth", adProbes < 0.75*fastProbes,
		"probes: adaptive %.0f vs always-fast %.0f", adProbes, fastProbes)
	return r
}

// Sec4_2 reproduces the §4.2 worked analysis: with two links of delivery
// probability 0.8 and 0.6 and an estimate error of 0.25, ETX can pick
// the wrong link, costing 5/12 ≈ 42% extra transmissions on that hop.
func Sec4_2(cfg Config) *Report {
	// The analysis is deterministic; it still routes through the trial
	// engine as a single trial so the sharded and in-process runs share
	// one code path.
	cfg.trials("sec4-2", 1, func(_ int, em *Emitter) {
		penalty, overhead, err := mesh.Penalty(0.8, 0.6, 0.25)
		em.Add("penalty", penalty)
		em.Add("overhead", overhead)
		flip := 0.0
		if err == nil {
			flip = 1
		}
		em.Add("flip", flip)
		_, _, err2 := mesh.Penalty(0.8, 0.6, 0.05)
		same := 0.0
		if err2 == mesh.ErrSamePick {
			same = 1
		}
		em.Add("same", same)
	})
	if cfg.collecting() {
		return nil
	}

	r := &Report{
		ID:    "sec4-2",
		Title: "ETX penalty from erroneous delivery estimates",
		Paper: "p1=0.8, p2=0.6, δ=0.25 → overhead 5/12 ≈ 42%",
	}
	penalty, overhead := cfg.val("penalty"), cfg.val("overhead")
	r.Columns = []string{"value"}
	r.Rows = []Row{
		{Label: "penalty (extra tx)", Values: []float64{penalty}},
		{Label: "overhead", Values: []float64{overhead}},
	}
	r.AddCheck("pick-can-flip", cfg.val("flip") == 1, "δ=0.25 flips the ETX choice: %v", cfg.val("flip") == 1)
	// The paper quotes 5/12 ≈ 42%%; that value is the penalty
	// 1/p2 − 1/p1 (the overhead ratio p1/p2 − 1 evaluates to 1/3).
	r.AddCheck("penalty-5-12", penalty > 0.416 && penalty < 0.417,
		"penalty %.4f extra transmissions (paper 5/12 ≈ 0.4167)", penalty)

	// A δ too small to flip the decision must return ErrSamePick.
	r.AddCheck("small-error-no-flip", cfg.val("same") == 1,
		"δ=0.05 cannot flip the choice")
	return r
}
