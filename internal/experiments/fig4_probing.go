package experiments

import (
	"fmt"
	"time"

	"repro/internal/channel"
	"repro/internal/mesh"
	"repro/internal/parallel"
	"repro/internal/probing"
	"repro/internal/sensors"
	"repro/internal/stats"
)

func init() {
	register("fig4-1", "delivery rate over time with movement hint", Fig4_1)
	register("fig4-2", "estimate error vs probing rate, static", Fig4_2)
	register("fig4-3", "estimate error vs probing rate, mobile", Fig4_3)
	register("fig4-4", "delivery probability by probing rate, stationary timeline", Fig4_4)
	register("fig4-5", "delivery probability by probing rate, mobile timeline", Fig4_5)
	register("fig4-6", "adaptive vs fixed probing on a combined trace", Fig4_6)
	register("sec4-2", "ETX penalty of erroneous link estimates", Sec4_2)
}

// probingEnv is the marginal mesh-scale link the Chapter 4 measurements
// study: a link weak enough that even 6 Mbps delivery fluctuates. The
// paper's probing experiments use the same stationary and human/mobile
// setups as Chapter 3 but at mesh link distances.
func probingEnv() channel.Environment {
	e := channel.Office.WithBaseSNR(9)
	e.Name = "mesh-link"
	e.ShadowSigma = 1.5
	e.StaticFadeRate = 0.1
	e.StaticFadeDepth = 4
	// A walker on a long mesh link shadows the path on a seconds
	// timescale; this is what makes the mobile delivery probability jump
	// 20%+ from second to second (Figure 4-1) while the static link
	// stays flat.
	e.WalkShadowSigma = 11
	e.WalkShadowTau = 5 * time.Second
	// At the robust 6 Mbps probe rate the walking-scale shadowing is the
	// variation that matters; fast fading decorrelates too quickly to be
	// visible through 10-probe windows and is exercised by the Chapter 3
	// experiments instead.
	e.CoherenceTime = 5 * time.Second
	return e
}

// probingRates is the sweep of Figures 4-2/4-3 in probes per second.
var probingRates = []float64{0.1, 0.2, 0.5, 1, 2, 5, 10}

// Fig4_1 reproduces Figure 4-1: packet delivery rate for 6 Mbps packets
// over time on a trace that alternates static and mobile phases, with
// the movement hint overlaid. The shape claim: motion makes the
// per-second delivery ratio jump by more than 20% from second to second.
// The figure plots one trace; the checks aggregate the jump statistics
// over several independent traces so the claim does not ride on one
// realization of the slow shadowing process.
func Fig4_1(cfg Config) *Report {
	r := &Report{
		ID:    "fig4-1",
		Title: "Delivery rate (6 Mbps) over time and movement",
		Paper: "delivery ratio fluctuates >20%/s only while the movement hint is raised",
	}
	total := time.Duration(cfg.scaleInt(140, 60)) * time.Second
	sched := sensors.AlternatingSchedule(total, 20*time.Second, sensors.Walk, false)
	n := cfg.scaleInt(8, 4)
	traceSeeds := cfg.stream("fig4-1/traces")
	probeSeeds := cfg.stream("fig4-1/probes")

	type jumpStats struct {
		perSec               *stats.Series
		sumStatic, sumMobile float64
		nStatic, nMobile     int
		bigStatic, bigMobile int
	}
	var pool channel.TracePool
	trials := parallel.Map(cfg.workers(), n, func(rep int) jumpStats {
		tr := pool.Generate(channel.Config{Env: probingEnv(), Sched: sched, Total: total, Seed: traceSeeds.Seed(rep)})
		defer pool.Put(tr)
		// 200 probes/s reference stream bucketed per second, as the paper
		// buckets ~200 packets per bit rate per second.
		stream := probing.CollectStream(tr, probing.ReferenceRate, probeSeeds.Seed(rep))
		raw := &stats.Series{Name: "delivery ratio"}
		for _, p := range stream.Probes {
			v := 0.0
			if p.OK {
				v = 1
			}
			raw.Add(p.At.Seconds(), v)
		}
		js := jumpStats{perSec: raw.Bucketed(1)}
		js.perSec.Name = "delivery ratio (1 s buckets)"
		// Jumps per phase: |Δ delivery| between adjacent seconds.
		for i := 1; i < js.perSec.Len(); i++ {
			t := time.Duration(js.perSec.Points[i].X * float64(time.Second))
			d := js.perSec.Points[i].Y - js.perSec.Points[i-1].Y
			if d < 0 {
				d = -d
			}
			if sched.MovingAt(t) && sched.MovingAt(t-time.Second) {
				js.sumMobile += d
				js.nMobile++
				if d > 0.2 {
					js.bigMobile++
				}
			} else if !sched.MovingAt(t) && !sched.MovingAt(t-time.Second) {
				js.sumStatic += d
				js.nStatic++
				if d > 0.2 {
					js.bigStatic++
				}
			}
		}
		return js
	})

	hint := &stats.Series{Name: "movement hint"}
	for t := time.Duration(0); t < total; t += time.Second {
		v := 0.0
		if sched.MovingAt(t) {
			v = 1
		}
		hint.Add(t.Seconds(), v)
	}
	r.Series = append(r.Series, trials[0].perSec, hint)

	var agg jumpStats
	for _, js := range trials {
		agg.sumStatic += js.sumStatic
		agg.sumMobile += js.sumMobile
		agg.nStatic += js.nStatic
		agg.nMobile += js.nMobile
		agg.bigStatic += js.bigStatic
		agg.bigMobile += js.bigMobile
	}
	meanStatic := agg.sumStatic / float64(agg.nStatic)
	meanMobile := agg.sumMobile / float64(agg.nMobile)
	r.Columns = []string{"value"}
	r.Rows = []Row{
		{Label: "mean |Δ|/s static", Values: []float64{meanStatic}},
		{Label: "mean |Δ|/s mobile", Values: []float64{meanMobile}},
		{Label: ">20% jumps static", Values: []float64{float64(agg.bigStatic)}},
		{Label: ">20% jumps mobile", Values: []float64{float64(agg.bigMobile)}},
	}
	r.AddCheck("mobile-fluctuates-more", meanMobile > 2*meanStatic,
		"second-to-second jumps: mobile %.3f vs static %.3f (%d traces)", meanMobile, meanStatic, n)
	r.AddCheck("mobile-20pct-jumps", agg.bigMobile > 3*agg.bigStatic,
		">20%% jumps: mobile %d vs static %d (%d traces)", agg.bigMobile, agg.bigStatic, n)
	return r
}

// errVsRate runs the Figures 4-2/4-3 analysis for one mobility mode over
// several traces, returning mean error per probing rate. Each trace is
// one trial of the worker pool: it derives its own trace and probe seeds
// by trial index, and the per-rate errors merge in trial order.
func errVsRate(cfg Config, mode sensors.MobilityMode, label string) map[float64]float64 {
	n := cfg.scaleInt(20, 5) // the paper collects 20 traces per case
	total := time.Duration(cfg.scaleInt(180, 120)) * time.Second
	traces := cfg.stream("fig4-err/" + label + "/traces")
	probes := cfg.stream("fig4-err/" + label + "/probes")
	// Per-trial traces recycle through a pool (they are long: 2–3 min of
	// slots each) so the fan-out is not throttled by allocation.
	var pool channel.TracePool
	perTrial := parallel.Map(cfg.workers(), n, func(rep int) map[float64]float64 {
		sched := sensors.Schedule{{Start: 0, End: total, Mode: mode}}
		tr := pool.Generate(channel.Config{Env: probingEnv(), Sched: sched, Total: total,
			Seed: traces.Seed(rep)})
		defer pool.Put(tr)
		return probing.ErrorVsRate(tr, probingRates, 10, probes.Seed(rep))
	})
	agg := make(map[float64]*stats.Accumulator, len(probingRates))
	for _, rate := range probingRates {
		agg[rate] = &stats.Accumulator{}
	}
	for _, errs := range perTrial {
		for rate, e := range errs {
			agg[rate].Add(e)
		}
	}
	out := make(map[float64]float64, len(agg))
	for rate, acc := range agg {
		out[rate] = acc.Mean()
	}
	return out
}

func errReport(r *Report, errs map[float64]float64) *stats.Series {
	s := &stats.Series{Name: "mean |error|"}
	r.Columns = []string{"mean error"}
	for _, rate := range probingRates {
		s.Add(rate, errs[rate])
		r.Rows = append(r.Rows, Row{Label: fmt.Sprintf("%.1f probes/s", rate), Values: []float64{errs[rate]}})
	}
	r.Series = append(r.Series, s)
	return s
}

// Fig4_2 reproduces Figure 4-2: estimate error versus probing rate for
// the static case. Paper: even 0.1 probes/s keeps the error near 11%.
func Fig4_2(cfg Config) *Report {
	r := &Report{
		ID:    "fig4-2",
		Title: "Estimate error vs probing rate (static)",
		Paper: "error ≈ 11% at 0.1 probes/s; ≤ ~5% by 0.5 probes/s",
	}
	errs := errVsRate(cfg, sensors.Static, "static")
	errReport(r, errs)
	r.AddCheck("low-error-at-low-rate", errs[0.1] < 0.15,
		"error at 0.1 probes/s = %.3f (paper ≈ 0.11)", errs[0.1])
	r.AddCheck("error-5pct-by-0.5", errs[0.5] < 0.08,
		"error at 0.5 probes/s = %.3f (paper ≈ 0.05)", errs[0.5])
	return r
}

// Fig4_3 reproduces Figure 4-3: the same sweep for the mobile case.
// Paper: >35% error at 0.5 probes/s, ~10% needs 5 probes/s, 5% needs 10.
func Fig4_3(cfg Config) *Report {
	r := &Report{
		ID:    "fig4-3",
		Title: "Estimate error vs probing rate (mobile)",
		Paper: ">35% error at 0.5 probes/s; ~10% at 5 probes/s; 5% needs 10 probes/s (20× the static rate)",
	}
	errs := errVsRate(cfg, sensors.Walk, "mobile")
	errReport(r, errs)
	r.AddCheck("high-error-at-low-rate", errs[0.5] > 0.2,
		"error at 0.5 probes/s = %.3f (paper > 0.35)", errs[0.5])
	r.AddCheck("error-drops-at-high-rate", errs[10] < errs[0.5]/2,
		"error at 10 probes/s = %.3f vs %.3f at 0.5", errs[10], errs[0.5])

	// The factor-of-20 headline: compare the probing rate each case
	// needs to reach a 10% error.
	static := errVsRate(cfg, sensors.Static, "static")
	needRate := func(errs map[float64]float64, target float64) float64 {
		for _, rate := range probingRates {
			if errs[rate] <= target {
				return rate
			}
		}
		return probingRates[len(probingRates)-1]
	}
	sRate, mRate := needRate(static, 0.10), needRate(errs, 0.10)
	factor := mRate / sRate
	r.Notes = append(r.Notes, fmt.Sprintf("probing rate for ≤10%% error: static %.1f/s, mobile %.1f/s (factor %.0fx)", sRate, mRate, factor))
	r.AddCheck("factor-20-gap", factor >= 10,
		"mobile needs %.0fx the static probing rate for 10%% error (paper ~20-25x)", factor)
	return r
}

// trackingTimeline builds the Figure 4-4/4-5 timelines: the actual
// delivery probability and the estimates at 1, 5 and 10 probes/s over a
// representative 25 s trace.
func trackingTimeline(cfg Config, mode sensors.MobilityMode, seedOff int64, r *Report) {
	const total = 25 * time.Second
	sched := sensors.Schedule{{Start: 0, End: total, Mode: mode}}
	tr := channel.Generate(channel.Config{Env: probingEnv(), Sched: sched, Total: total, Seed: cfg.Seed + seedOff})

	actual := &stats.Series{Name: "actual"}
	for t := time.Duration(0); t < total; t += 250 * time.Millisecond {
		actual.Add(t.Seconds(), tr.WindowProb(t, probing.ActualWindow, probing.ProbeRate))
	}
	r.Series = append(r.Series, actual)

	// The three probing rates are independent runs over the same trace;
	// fan them out and merge series and errors in rate order.
	trackRates := []float64{1, 5, 10}
	runs := parallel.Map(cfg.workers(), len(trackRates), func(i int) probing.RunResult {
		rate := trackRates[i]
		return probing.RunScheduler(tr, &probing.FixedScheduler{PerSecond: rate}, 10, cfg.Seed+seedOff+int64(rate))
	})
	meanErr := map[float64]float64{}
	for i, rate := range trackRates {
		res := runs[i]
		s := &stats.Series{Name: fmt.Sprintf("%.0f probe/s", rate)}
		// Skip the window-fill transient (10 probes).
		fill := time.Duration(float64(10*time.Second) / rate)
		var errs []float64
		for _, smp := range res.Samples {
			s.Add(smp.At.Seconds(), smp.Observed)
			if smp.At > fill {
				errs = append(errs, smp.Error())
			}
		}
		meanErr[rate] = stats.Mean(errs)
		r.Series = append(r.Series, s)
	}
	r.Columns = []string{"mean error"}
	for _, rate := range []float64{1, 5, 10} {
		r.Rows = append(r.Rows, Row{Label: fmt.Sprintf("%.0f probe/s", rate), Values: []float64{meanErr[rate]}})
	}
}

// Fig4_4 reproduces Figure 4-4: in the stationary trace every probing
// rate tracks the actual delivery probability closely.
func Fig4_4(cfg Config) *Report {
	r := &Report{
		ID:    "fig4-4",
		Title: "Delivery probability by probing rate (stationary 25 s trace)",
		Paper: "all three probing rates track the actual probability closely",
	}
	trackingTimeline(cfg, sensors.Static, 301, r)
	var one, ten float64
	for _, row := range r.Rows {
		if row.Label == "1 probe/s" {
			one = row.Values[0]
		}
		if row.Label == "10 probe/s" {
			ten = row.Values[0]
		}
	}
	r.AddCheck("static-1ps-tracks", one < 0.12,
		"mean error at 1 probe/s = %.3f (close tracking)", one)
	r.AddCheck("static-10ps-tracks", ten < 0.12,
		"mean error at 10 probes/s = %.3f", ten)
	return r
}

// Fig4_5 reproduces Figure 4-5: in the mobile trace only the high
// probing rates track; 1 probe/s errs substantially in both directions.
func Fig4_5(cfg Config) *Report {
	r := &Report{
		ID:    "fig4-5",
		Title: "Delivery probability by probing rate (mobile 25 s trace)",
		Paper: "only 5–10 probes/s track; 1 probe/s errs substantially both ways",
	}
	trackingTimeline(cfg, sensors.Walk, 401, r)
	var one, ten float64
	for _, row := range r.Rows {
		if row.Label == "1 probe/s" {
			one = row.Values[0]
		}
		if row.Label == "10 probe/s" {
			ten = row.Values[0]
		}
	}
	r.AddCheck("mobile-1ps-lags", one > 0.18,
		"mean error at 1 probe/s = %.3f (substantial)", one)
	r.AddCheck("mobile-10ps-better", ten < 0.65*one,
		"mean error: 10 probes/s %.3f ≪ 1 probe/s %.3f", ten, one)
	return r
}

// Fig4_6 reproduces Figure 4-6: on a combined static+mobile trace, the
// hint-adaptive scheduler (1 ↔ 10 probes/s with a 1 s linger) tracks the
// actual delivery probability while the fixed 1 probe/s strategy lags by
// seconds — at a fraction of the fast scheduler's bandwidth.
func Fig4_6(cfg Config) *Report {
	r := &Report{
		ID:    "fig4-6",
		Title: "Adaptive vs fixed probing on a combined trace",
		Paper: "adaptive stays accurate through movement; fixed 1 probe/s lags multiple seconds",
	}
	total := time.Duration(cfg.scaleInt(60, 40)) * time.Second
	sched := sensors.AlternatingSchedule(total, 10*time.Second, sensors.Walk, false)
	tr := channel.Generate(channel.Config{Env: probingEnv(), Sched: sched, Total: total, Seed: cfg.Seed + 501})

	// Three independent scheduler strategies over the same trace.
	scheds := []func() probing.RunResult{
		func() probing.RunResult {
			hintFn := probing.MovementHintFn(tr, 100*time.Millisecond)
			return probing.RunScheduler(tr, &probing.HintScheduler{MovingFn: hintFn}, 10, cfg.Seed+502)
		},
		func() probing.RunResult {
			return probing.RunScheduler(tr, &probing.FixedScheduler{PerSecond: 1}, 10, cfg.Seed+503)
		},
		func() probing.RunResult {
			return probing.RunScheduler(tr, &probing.FixedScheduler{PerSecond: 10}, 10, cfg.Seed+504)
		},
	}
	runs := parallel.Map(cfg.workers(), len(scheds), func(i int) probing.RunResult { return scheds[i]() })
	adaptive, fixed, fast := runs[0], runs[1], runs[2]

	actual := &stats.Series{Name: "actual"}
	hint := &stats.Series{Name: "hint"}
	for t := time.Duration(0); t < total; t += 500 * time.Millisecond {
		actual.Add(t.Seconds(), tr.WindowProb(t, probing.ActualWindow, probing.ProbeRate))
		v := 0.0
		if sched.MovingAt(t) {
			v = 1
		}
		hint.Add(t.Seconds(), v)
	}
	sAd := &stats.Series{Name: "adaptive"}
	for _, smp := range adaptive.Samples {
		sAd.Add(smp.At.Seconds(), smp.Observed)
	}
	sFx := &stats.Series{Name: "1 probe/s"}
	for _, smp := range fixed.Samples {
		sFx.Add(smp.At.Seconds(), smp.Observed)
	}
	r.Series = append(r.Series, actual, sAd, sFx, hint)

	// Errors are compared on the mobile phases, where the strategies
	// differ; probe counts show the bandwidth saving vs always-fast.
	mobileErr := func(res probing.RunResult) float64 {
		var xs []float64
		for _, smp := range res.Samples {
			if tr.MovingAt(smp.At) {
				xs = append(xs, smp.Error())
			}
		}
		return stats.Mean(xs)
	}
	adErr, fxErr, fastErr := mobileErr(adaptive), mobileErr(fixed), mobileErr(fast)
	r.Columns = []string{"mobile err", "probes"}
	r.Rows = []Row{
		{Label: "adaptive", Values: []float64{adErr, float64(adaptive.Probes)}},
		{Label: "fixed 1/s", Values: []float64{fxErr, float64(fixed.Probes)}},
		{Label: "fixed 10/s", Values: []float64{fastErr, float64(fast.Probes)}},
	}
	r.AddCheck("adaptive-more-accurate", adErr < 0.7*fxErr,
		"mobile-phase error: adaptive %.3f vs fixed-1/s %.3f", adErr, fxErr)
	r.AddCheck("adaptive-close-to-fast", adErr < 1.5*fastErr+0.02,
		"adaptive %.3f ≈ always-fast %.3f", adErr, fastErr)
	r.AddCheck("adaptive-saves-bandwidth", float64(adaptive.Probes) < 0.75*float64(fast.Probes),
		"probes: adaptive %d vs always-fast %d", adaptive.Probes, fast.Probes)
	return r
}

// Sec4_2 reproduces the §4.2 worked analysis: with two links of delivery
// probability 0.8 and 0.6 and an estimate error of 0.25, ETX can pick
// the wrong link, costing 5/12 ≈ 42% extra transmissions on that hop.
func Sec4_2(cfg Config) *Report {
	r := &Report{
		ID:    "sec4-2",
		Title: "ETX penalty from erroneous delivery estimates",
		Paper: "p1=0.8, p2=0.6, δ=0.25 → overhead 5/12 ≈ 42%",
	}
	penalty, overhead, err := mesh.Penalty(0.8, 0.6, 0.25)
	r.Columns = []string{"value"}
	r.Rows = []Row{
		{Label: "penalty (extra tx)", Values: []float64{penalty}},
		{Label: "overhead", Values: []float64{overhead}},
	}
	r.AddCheck("pick-can-flip", err == nil, "δ=0.25 flips the ETX choice: %v", err == nil)
	// The paper quotes 5/12 ≈ 42%%; that value is the penalty
	// 1/p2 − 1/p1 (the overhead ratio p1/p2 − 1 evaluates to 1/3).
	r.AddCheck("penalty-5-12", penalty > 0.416 && penalty < 0.417,
		"penalty %.4f extra transmissions (paper 5/12 ≈ 0.4167)", penalty)

	// A δ too small to flip the decision must return ErrSamePick.
	_, _, err2 := mesh.Penalty(0.8, 0.6, 0.05)
	r.AddCheck("small-error-no-flip", err2 == mesh.ErrSamePick,
		"δ=0.05 cannot flip the choice")
	return r
}
