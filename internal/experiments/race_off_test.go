//go:build !race

package experiments

const underRace = false
