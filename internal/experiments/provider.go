package experiments

import (
	"sync"

	"repro/internal/channel"
	"repro/internal/trace"
)

// traceProvider memoizes per-cell trace generation for sub-trial loops
// (see Config.subTrials): when one input cell's trace feeds several work
// units, the units of the cell that land in this process share a single
// generation instead of each regenerating it. Traces are pure functions
// of (seed, params) and ~350 KB each, so regenerating at the process
// that replays them is cheaper than shipping them — the sub-trial fan
// moves the *replay* work, and the provider keeps the generation work
// from multiplying by the unit count. A boundary cell split between two
// shards generates once per shard; with row-major sub-trial indexing at
// most two cells per shard pay that.
//
// Reference counting returns each trace to the TracePool as soon as the
// last local unit of its cell finishes, so the provider holds at most
// the working set of cells in flight — not the whole grid — and the
// generation hot path stays on the pooled 0-alloc GenerateInto.
type traceProvider struct {
	pool  *channel.TracePool
	gen   func(cell int) channel.Config
	units int
	// lo/hi is the global trial range this process executes
	// (Config.execRange), from which per-cell local use counts derive.
	lo, hi int

	mu      sync.Mutex
	entries map[int]*traceEntry
}

type traceEntry struct {
	ready chan struct{}
	tr    *trace.FateTrace
	refs  int
}

// newTraceProvider builds a provider for a loop of plan.Units work
// units per cell; gen maps a cell index to its generation parameters.
func newTraceProvider(cfg Config, pool *channel.TracePool, units, trials int, gen func(cell int) channel.Config) *traceProvider {
	lo, hi := cfg.execRange(trials)
	return &traceProvider{
		pool:    pool,
		gen:     gen,
		units:   units,
		lo:      lo,
		hi:      hi,
		entries: map[int]*traceEntry{},
	}
}

// uses returns how many local work units read the cell's trace.
func (p *traceProvider) uses(cell int) int {
	lo, hi := cell*p.units, (cell+1)*p.units
	if lo < p.lo {
		lo = p.lo
	}
	if hi > p.hi {
		hi = p.hi
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// acquire returns the cell's trace, generating it on first use. The
// caller must release it when its unit of work is done. Concurrent
// units of one cell share the first caller's generation: later callers
// block on it rather than generating twice.
func (p *traceProvider) acquire(cell int) *trace.FateTrace {
	p.mu.Lock()
	e := p.entries[cell]
	if e != nil {
		p.mu.Unlock()
		<-e.ready
		return e.tr
	}
	e = &traceEntry{ready: make(chan struct{}), refs: p.uses(cell)}
	p.entries[cell] = e
	p.mu.Unlock()
	e.tr = p.pool.Generate(p.gen(cell))
	close(e.ready)
	return e.tr
}

// release returns one unit's reference; the trace goes back to the pool
// when the last local unit of the cell is done with it.
func (p *traceProvider) release(cell int) {
	p.mu.Lock()
	e := p.entries[cell]
	if e == nil {
		p.mu.Unlock()
		panic("experiments: trace released for a cell never acquired")
	}
	e.refs--
	done := e.refs == 0
	if done {
		delete(p.entries, cell)
	}
	p.mu.Unlock()
	if done {
		p.pool.Put(e.tr)
	}
}
