package experiments

import (
	"fmt"
	"time"

	"repro/internal/ap"
	"repro/internal/phy"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/vehicular"
)

func init() {
	register("table5-1", "median vehicular link duration by heading difference", Table5_1, tags("ch5", "vehicular", "paper"))
	register("sec5-1", "CTE route selection vs hint-free route stability", Sec5_1, tags("ch5", "vehicular", "paper"))
	register("fig5-1", "AP throughput collapse when a client departs", Fig5_1, tags("ch5", "ap", "paper"))
	register("sec5-2", "AP association scoring and mobile-favored scheduling", Sec5_2, tags("ch5", "ap", "paper"))
	register("sec5-3", "guard-interval (cyclic prefix) selection from location hints", Sec5_3, tags("ch5", "paper"))
	register("sec5-4", "movement-based radio power saving", Sec5_4, tags("ch5", "paper"))
}

// Table5_1 reproduces Table 5.1: simulate vehicle fleets on the road
// grid, record every link (two vehicles within 100 m) with the heading
// difference at link formation, and report the median link duration per
// heading-difference bucket. Paper values: 66 / 32 / 15 / 9 seconds with
// an all-links median of 16 — similar headings predict 4–5× longer links.
func Table5_1(cfg Config) *Report {
	nets := cfg.scaleInt(15, 3) // the paper studies 15 networks of 100 vehicles
	horizon := time.Duration(cfg.scaleInt(300, 120)) * time.Second
	// Each network is one independent trial: it owns a seed derived by
	// network index and emits its link durations into the per-bucket
	// accumulators and the duration histogram, absorbed in network
	// order, so the report does not depend on worker or shard count.
	ss := cfg.stream("table5-1")
	bucketKey := func(i int) string { return fmt.Sprintf("bucket/%d", i) }
	cfg.trials("table5-1", nets, func(n int, em *Emitter) {
		sim := vehicular.NewSimulation(vehicular.DefaultMobilityConfig(ss.Seed(n)))
		for _, l := range vehicular.CollectLinks(sim, horizon) {
			d := l.Duration().Seconds()
			em.Add(bucketKey(vehicular.HeadingBucket(l.StartHeadingDiff)), d)
			em.Add("all", d)
			em.Hist("durs", 1, d) // 1 s buckets over link lifetimes
		}
	})
	if cfg.collecting() {
		return nil
	}

	r := &Report{
		ID:    "table5-1",
		Title: "Median link duration (s) by heading difference",
		Paper: "[0,9]=66  [10,19]=32  [20,29]=15  [30,180]=9  all=16 (4–5× for similar headings)",
	}
	all := cfg.acc("all")
	var buckets [4]float64
	for i := range buckets {
		buckets[i] = cfg.acc(bucketKey(i)).Median()
	}
	allMed := all.Median()

	r.Columns = []string{"median (s)"}
	for i, name := range vehicular.BucketNames {
		r.Rows = append(r.Rows, Row{Label: name, Values: []float64{buckets[i]}})
	}
	r.Rows = append(r.Rows, Row{Label: "all links", Values: []float64{allMed}})
	r.Notes = append(r.Notes, fmt.Sprintf("%d links observed across %d networks", all.N(), nets))
	r.Notes = append(r.Notes, "link duration distribution: "+cfg.hist("durs").String())

	r.AddCheck("enough-links", all.N() > 1000, "%d links (paper observed 16,523)", all.N())
	r.AddCheck("monotone-buckets", buckets[0] > buckets[1] && buckets[1] > buckets[2] && buckets[2] >= buckets[3],
		"medians decrease with heading difference: %.0f > %.0f > %.0f ≥ %.0f",
		buckets[0], buckets[1], buckets[2], buckets[3])
	factor := 0.0
	if allMed > 0 {
		factor = buckets[0] / allMed
	}
	r.AddCheck("similar-heading-4-5x", factor >= 2.5,
		"similar-heading links last %.1fx the all-links median (paper 4–5x)", factor)
	return r
}

// Sec5_1 reproduces the §5.1.2 route-stability claim: routes chosen by
// the CTE metric (prefer neighbours with similar headings) last 4–5×
// longer than hint-free route selection.
func Sec5_1(cfg Config) *Report {
	mob := vehicular.DefaultMobilityConfig(cfg.Seed)
	mob.Vehicles = 250                // denser fleet so aligned next hops exist
	mob.Step = 500 * time.Millisecond // finer steps resolve short route lives
	// Vehicles sharing a road move with traffic, so their relative speed
	// is far below two independent speed draws; with the default jitter
	// the aligned links the CTE metric finds break on speed difference
	// rather than geometry, which is not what §5.1.2 measures.
	mob.SpeedJitter = 0.5
	scfg := vehicular.StabilityConfig{
		Mobility: mob,
		Hops:     3,
		Horizon:  150 * time.Second,
	}
	trials := cfg.scaleInt(600, 150)
	// One attempt per trial index; failed constructions (sparse
	// neighbourhoods) emit nothing and drop out deterministically, and
	// successes absorb in trial order. Both selectors share the seed
	// stream so trial i runs on the same fleet from the same source for
	// both — a paired comparison, which is what keeps the variance of
	// the ratio down.
	ss := cfg.stream("sec5-1")
	selectors := []struct {
		key string
		sel vehicular.RouteSelector
	}{
		{"cte", vehicular.CTESelector{}},
		{"free", vehicular.RandomSelector{}},
	}
	for _, s := range selectors {
		s := s
		cfg.trials("sec5-1/"+s.key, trials, func(i int, em *Emitter) {
			if life, ok := vehicular.RouteLifetimeTrial(scfg, s.sel, ss.Seed(i)); ok {
				em.Point("life/"+s.key, life, 0)
			}
		})
	}
	if cfg.collecting() {
		return nil
	}

	r := &Report{
		ID:    "sec5-1",
		Title: "Route lifetime: CTE vs hint-free selection",
		Paper: "hint-aware route selection increases route stability by 4–5×",
	}
	// Each successful trial contributed a one-point fragment (lifetime
	// on x); sorting by lifetime is exactly the CDF ordering, and the
	// stable sort over trial-ordered points keeps ties deterministic.
	lifetimes := func(key string, sel vehicular.RouteSelector) (*stats.Accumulator, *stats.Series) {
		cdf := stats.MergeSeries("route lifetime CDF ("+sel.Name()+")", cfg.seriesCol("life/"+key, ""))
		acc := &stats.Accumulator{}
		for i := range cdf.Points {
			cdf.Points[i].Y = float64(i+1) / float64(len(cdf.Points))
			acc.Add(cdf.Points[i].X)
		}
		return acc, cdf
	}
	cteAcc, cteCDF := lifetimes("cte", vehicular.CTESelector{})
	freeAcc, freeCDF := lifetimes("free", vehicular.RandomSelector{})
	r.Series = append(r.Series, cteCDF, freeCDF)
	cte, free := cteAcc.Values(), freeAcc.Values()

	cteMed, freeMed := cteAcc.Median(), freeAcc.Median()
	r.Columns = []string{"median (s)", "mean (s)", "routes"}
	r.Rows = []Row{
		{Label: "CTE", Values: []float64{cteMed, stats.Mean(cte), float64(len(cte))}},
		{Label: "hint-free", Values: []float64{freeMed, stats.Mean(free), float64(len(free))}},
	}
	factor := 0.0
	if freeMed > 0 {
		factor = cteMed / freeMed
	}
	r.AddCheck("cte-more-stable", factor >= 2,
		"median route lifetime: CTE %.0fs vs hint-free %.0fs (%.1fx, paper 4–5x)", cteMed, freeMed, factor)
	return r
}

// emitTwoClient records an AP simulation result under a key prefix.
func emitTwoClient(em *Emitter, prefix string, res ap.TwoClientResult) {
	for _, p := range res.Client1.Points {
		em.Point(prefix+"/c1", p.X, p.Y)
	}
	for _, p := range res.Client2.Points {
		em.Point(prefix+"/c2", p.X, p.Y)
	}
	em.Add(prefix+"/total1", res.Total1)
	em.Add(prefix+"/total2", res.Total2)
	em.Add(prefix+"/prune", res.PruneAt.Seconds())
}

// Fig5_1 reproduces Figure 5-1 and the §5.2.3 fix: two clients share an
// AP; client 2 leaves at ~35 s. With the commercial behaviour
// (frame-level fairness, 10 s prune timeout) the remaining client's
// throughput collapses for ~10 s; with hint-aware pruning it barely dips.
func Fig5_1(cfg Config) *Report {
	base := ap.TwoClientConfig{Policy: ap.FrameFair}
	hintCfg := base
	hintCfg.Prune = ap.PruneConfig{Timeout: 10 * time.Second, HintAware: true, ProbeEvery: time.Second}
	// The two AP simulations are seed-free and independent; run them as
	// a two-trial fan-out.
	cfg.trials("fig5-1", 2, func(i int, em *Emitter) {
		if i == 0 {
			emitTwoClient(em, "legacy", ap.RunTwoClients(base))
		} else {
			emitTwoClient(em, "hint", ap.RunTwoClients(hintCfg))
		}
	})
	if cfg.collecting() {
		return nil
	}

	r := &Report{
		ID:    "fig5-1",
		Title: "Two-client AP throughput; client 2 departs at 35 s",
		Paper: "remaining client drops precipitously for ~10 s, then recovers to full bandwidth",
	}
	legacy1 := cfg.seriesCol("legacy/c1", "client 1 (legacy AP)")
	legacy2 := cfg.seriesCol("legacy/c2", "client 2 (departs)")
	hinted1 := cfg.seriesCol("hint/c1", "client 1 (hint-aware AP)")
	r.Series = append(r.Series, legacy1, legacy2, hinted1)

	// Quantify the collapse: client 1's mean throughput in the windows
	// before departure, during the open-loop retry interval, and after
	// pruning.
	window := func(s *stats.Series, from, to float64) float64 {
		var xs []float64
		for _, p := range s.Points {
			if p.X >= from && p.X < to {
				xs = append(xs, p.Y)
			}
		}
		return stats.Mean(xs)
	}
	before := window(legacy1, 20, 34)
	during := window(legacy1, 36, 44)
	after := window(legacy1, 48, 58)
	hintDuring := window(hinted1, 36, 44)

	r.Columns = []string{"Mbps"}
	r.Rows = []Row{
		{Label: "legacy before depart", Values: []float64{before}},
		{Label: "legacy during retries", Values: []float64{during}},
		{Label: "legacy after prune", Values: []float64{after}},
		{Label: "hint-aware during", Values: []float64{hintDuring}},
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("legacy AP pruned at %.1fs; hint-aware at %.1fs",
			cfg.val("legacy/prune"), cfg.val("hint/prune")))

	r.AddCheck("collapse-during-retries", during < 0.5*before,
		"client 1 throughput %.1f → %.1f Mbps while the AP retries open-loop", before, during)
	r.AddCheck("recovers-after-prune", after > 1.5*before,
		"client 1 recovers to the whole channel: %.1f Mbps (was sharing at %.1f)", after, before)
	r.AddCheck("hint-avoids-collapse", hintDuring > 2*during,
		"hint-aware AP keeps client 1 at %.1f Mbps vs %.1f legacy", hintDuring, during)
	return r
}

// Sec5_2 evaluates the remaining AP policies: hint-aware association
// scoring (§5.2.1) picks the AP with the longest expected association,
// and mobile-favored scheduling (§5.2.2) increases aggregate delivered
// traffic when a mobile client will soon depart.
func Sec5_2(cfg Config) *Report {
	// Scheduling: client 2 departs at 20 s with a finite backlog; the
	// static client's batch is finite in time anyway, so dedicating more
	// of the pre-departure window to the mobile client raises the total.
	base := ap.TwoClientConfig{
		Total:         40 * time.Second,
		DepartAt:      20 * time.Second,
		DepartWarning: 10 * time.Second, // the client roams for 10 s before leaving
		MobileShare:   0.85,
		Policy:        ap.FrameFair,
	}
	fav := base
	fav.Policy = ap.MobileFavored
	cfg.trials("sec5-2", 2, func(i int, em *Emitter) {
		if i == 0 {
			res := ap.RunTwoClients(base)
			em.Add("fair/total1", res.Total1)
			em.Add("fair/total2", res.Total2)
		} else {
			res := ap.RunTwoClients(fav)
			em.Add("fav/total1", res.Total1)
			em.Add("fav/total2", res.Total2)
		}
	})
	if cfg.collecting() {
		return nil
	}

	r := &Report{
		ID:    "sec5-2",
		Title: "Adaptive association and packet scheduling",
		Paper: "heading-aware association predicts longer associations; favoring the mobile client raises aggregate throughput",
	}
	score := ap.DefaultAssociationScore()

	// Association: a client walking toward AP-B should pick AP-B even
	// though AP-A is currently stronger (deterministic, so it lives in
	// the finish phase).
	toward := ap.ClientHints{Moving: true, HeadingDeg: 90, SpeedMps: 1.5, BearingToAPDeg: 90, RSSdB: 12}
	away := ap.ClientHints{Moving: true, HeadingDeg: 90, SpeedMps: 1.5, BearingToAPDeg: 270, RSSdB: 15}
	hintPick := ap.BestAP(score, []ap.ClientHints{away, toward})
	rssPick := ap.BestAPByRSS([]ap.ClientHints{away, toward})
	r.AddCheck("association-prefers-approach", hintPick == 1 && rssPick == 0,
		"hint-aware picks the approached AP (idx %d); RSS-only picks the one being left (idx %d)", hintPick, rssPick)

	fair1, fair2 := cfg.val("fair/total1"), cfg.val("fair/total2")
	fav1, fav2 := cfg.val("fav/total1"), cfg.val("fav/total2")
	r.Columns = []string{"client1 Mb", "client2 Mb", "total Mb"}
	r.Rows = []Row{
		{Label: "frame-fair", Values: []float64{fair1, fair2, fair1 + fair2}},
		{Label: "mobile-favored", Values: []float64{fav1, fav2, fav1 + fav2}},
	}
	r.AddCheck("favoring-mobile-raises-client2", fav2 > 1.15*fair2,
		"mobile client receives %.0f Mb vs %.0f under frame fairness", fav2, fair2)
	return r
}

// Sec5_3 evaluates the §5.3 PHY hint: outdoors the delay spread exceeds
// the standard 0.8 µs cyclic prefix; a GPS-lock hint lets the node pick
// the long prefix directly, recovering most of the throughput that ISI
// destroys, without an empirical search.
func Sec5_3(cfg Config) *Report {
	// Deterministic PHY computation, run as one trial so every
	// execution mode shares the code path.
	cfg.trials("sec5-3", 1, func(_ int, em *Emitter) {
		const snr = 21.0
		indoorDelay := 200 * time.Nanosecond
		outdoorDelay := 1500 * time.Nanosecond
		rate := phy.Rate54

		em.Add("stdin", phy.EffectiveThroughputMbps(rate, phy.GI800, snr, indoorDelay, 1000))
		em.Add("stdout", phy.EffectiveThroughputMbps(rate, phy.GI800, snr, outdoorDelay, 1000))
		em.Add("hintout", phy.EffectiveThroughputMbps(rate, phy.GuardIntervalForEnvironment(true), snr, outdoorDelay, 1000))
		em.Add("bestout", phy.EffectiveThroughputMbps(rate, phy.BestGuardInterval(rate, snr, outdoorDelay, 1000), snr, outdoorDelay, 1000))
	})
	if cfg.collecting() {
		return nil
	}

	r := &Report{
		ID:    "sec5-3",
		Title: "Cyclic prefix selection with an outdoor hint",
		Paper: "802.11a works poorly outdoors with the standard prefix; a hint makes the search unnecessary",
	}
	stdIn, stdOut := cfg.val("stdin"), cfg.val("stdout")
	hintOut, bestOut := cfg.val("hintout"), cfg.val("bestout")

	r.Columns = []string{"Mbps"}
	r.Rows = []Row{
		{Label: "indoor, GI 0.8us", Values: []float64{stdIn}},
		{Label: "outdoor, GI 0.8us", Values: []float64{stdOut}},
		{Label: "outdoor, hint GI 1.6us", Values: []float64{hintOut}},
		{Label: "outdoor, exhaustive best", Values: []float64{bestOut}},
	}
	r.AddCheck("outdoor-hurts-standard-prefix", stdOut < 0.5*stdIn,
		"outdoor delay spread cuts GI0.8 throughput %.1f → %.1f Mbps", stdIn, stdOut)
	r.AddCheck("hint-recovers", hintOut > 2*stdOut,
		"outdoor hint prefix delivers %.1f vs %.1f Mbps", hintOut, stdOut)
	r.AddCheck("hint-matches-search", hintOut >= 0.95*bestOut,
		"hint pick %.1f ≈ exhaustive best %.1f Mbps", hintOut, bestOut)
	return r
}

// Sec5_4 evaluates the §5.4 power policy on a scenario with dead spots
// and a fast-vehicle phase: the hint-aware policy powers the radio down
// when scanning is futile and saves most of the scan energy without
// missing meaningful connectivity.
func Sec5_4(cfg Config) *Report {
	total := 10 * time.Minute
	// Scenario: 0–3 min parked in a dead spot; 3–5 min walking through
	// coverage; 5–8 min driving fast (no useful Wi-Fi); 8–10 min walking
	// in coverage again.
	scenario := func(t time.Duration) power.Input {
		switch {
		case t < 3*time.Minute:
			return power.Input{Moving: false, SpeedMps: 0, APAvailable: false}
		case t < 5*time.Minute:
			return power.Input{Moving: true, SpeedMps: 1.4, APAvailable: true}
		case t < 8*time.Minute:
			return power.Input{Moving: true, SpeedMps: 28, APAvailable: false}
		default:
			return power.Input{Moving: true, SpeedMps: 1.4, APAvailable: true}
		}
	}
	// The two policies are deterministic simulations; run them as a
	// two-trial fan-out.
	cfg.trials("sec5-4", 2, func(i int, em *Emitter) {
		model := power.DefaultEnergyModel()
		aware := i == 0
		res := power.Simulate(power.NewPolicy(aware), model, 100*time.Millisecond, total, scenario)
		key := "naive"
		if aware {
			key = "aware"
		}
		em.Add(key+"/energy", res.EnergyMJ)
		em.Add(key+"/missed", res.MissedConnectivity.Seconds())
		em.Add(key+"/off", res.TimeIn[power.RadioOff].Seconds())
	})
	if cfg.collecting() {
		return nil
	}

	r := &Report{
		ID:    "sec5-4",
		Title: "Movement-based radio power saving",
		Paper: "power down when static with no AP, or moving too fast for Wi-Fi; wake on movement hints",
	}
	r.Columns = []string{"energy mJ", "missed s", "off s"}
	r.Rows = []Row{
		{Label: "hint-aware", Values: []float64{cfg.val("aware/energy"), cfg.val("aware/missed"), cfg.val("aware/off")}},
		{Label: "hint-oblivious", Values: []float64{cfg.val("naive/energy"), cfg.val("naive/missed"), cfg.val("naive/off")}},
	}
	saving := 1 - cfg.val("aware/energy")/cfg.val("naive/energy")
	r.AddCheck("saves-energy", saving > 0.15,
		"hint-aware saves %.0f%% energy (%.0f vs %.0f mJ)", 100*saving, cfg.val("aware/energy"), cfg.val("naive/energy"))
	r.AddCheck("no-extra-missed-connectivity", cfg.val("aware/missed") <= cfg.val("naive/missed")+5,
		"missed connectivity: aware %.0fs vs naive %.0fs", cfg.val("aware/missed"), cfg.val("naive/missed"))
	return r
}
