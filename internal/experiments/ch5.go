package experiments

import (
	"fmt"
	"time"

	"repro/internal/ap"
	"repro/internal/parallel"
	"repro/internal/phy"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/vehicular"
)

func init() {
	register("table5-1", "median vehicular link duration by heading difference", Table5_1)
	register("sec5-1", "CTE route selection vs hint-free route stability", Sec5_1)
	register("fig5-1", "AP throughput collapse when a client departs", Fig5_1)
	register("sec5-2", "AP association scoring and mobile-favored scheduling", Sec5_2)
	register("sec5-3", "guard-interval (cyclic prefix) selection from location hints", Sec5_3)
	register("sec5-4", "movement-based radio power saving", Sec5_4)
}

// Table5_1 reproduces Table 5.1: simulate vehicle fleets on the road
// grid, record every link (two vehicles within 100 m) with the heading
// difference at link formation, and report the median link duration per
// heading-difference bucket. Paper values: 66 / 32 / 15 / 9 seconds with
// an all-links median of 16 — similar headings predict 4–5× longer links.
func Table5_1(cfg Config) *Report {
	r := &Report{
		ID:    "table5-1",
		Title: "Median link duration (s) by heading difference",
		Paper: "[0,9]=66  [10,19]=32  [20,29]=15  [30,180]=9  all=16 (4–5× for similar headings)",
	}
	nets := cfg.scaleInt(15, 3) // the paper studies 15 networks of 100 vehicles
	horizon := time.Duration(cfg.scaleInt(300, 120)) * time.Second
	// Each network is one independent trial: it owns a seed derived by
	// network index, and the per-network link lists merge in index order,
	// so the report does not depend on the worker count.
	ss := cfg.stream("table5-1")
	perNet := parallel.Map(cfg.workers(), nets, func(n int) []vehicular.LinkRecord {
		sim := vehicular.NewSimulation(vehicular.DefaultMobilityConfig(ss.Seed(n)))
		return vehicular.CollectLinks(sim, horizon)
	})
	var all []vehicular.LinkRecord
	durs := stats.NewHistogram(1) // 1 s buckets over link lifetimes
	for _, links := range perNet {
		all = append(all, links...)
		for _, l := range links {
			durs.Add(l.Duration().Seconds())
		}
	}
	buckets, allMed := vehicular.MedianDurations(all)

	r.Columns = []string{"median (s)"}
	for i, name := range vehicular.BucketNames {
		r.Rows = append(r.Rows, Row{Label: name, Values: []float64{buckets[i]}})
	}
	r.Rows = append(r.Rows, Row{Label: "all links", Values: []float64{allMed}})
	r.Notes = append(r.Notes, fmt.Sprintf("%d links observed across %d networks", len(all), nets))
	r.Notes = append(r.Notes, "link duration distribution: "+durs.String())

	r.AddCheck("enough-links", len(all) > 1000, "%d links (paper observed 16,523)", len(all))
	r.AddCheck("monotone-buckets", buckets[0] > buckets[1] && buckets[1] > buckets[2] && buckets[2] >= buckets[3],
		"medians decrease with heading difference: %.0f > %.0f > %.0f ≥ %.0f",
		buckets[0], buckets[1], buckets[2], buckets[3])
	factor := 0.0
	if allMed > 0 {
		factor = buckets[0] / allMed
	}
	r.AddCheck("similar-heading-4-5x", factor >= 2.5,
		"similar-heading links last %.1fx the all-links median (paper 4–5x)", factor)
	return r
}

// Sec5_1 reproduces the §5.1.2 route-stability claim: routes chosen by
// the CTE metric (prefer neighbours with similar headings) last 4–5×
// longer than hint-free route selection.
func Sec5_1(cfg Config) *Report {
	r := &Report{
		ID:    "sec5-1",
		Title: "Route lifetime: CTE vs hint-free selection",
		Paper: "hint-aware route selection increases route stability by 4–5×",
	}
	mob := vehicular.DefaultMobilityConfig(cfg.Seed)
	mob.Vehicles = 250                // denser fleet so aligned next hops exist
	mob.Step = 500 * time.Millisecond // finer steps resolve short route lives
	// Vehicles sharing a road move with traffic, so their relative speed
	// is far below two independent speed draws; with the default jitter
	// the aligned links the CTE metric finds break on speed difference
	// rather than geometry, which is not what §5.1.2 measures.
	mob.SpeedJitter = 0.5
	scfg := vehicular.StabilityConfig{
		Mobility: mob,
		Hops:     3,
		Horizon:  150 * time.Second,
	}
	trials := cfg.scaleInt(600, 150)
	// One attempt per trial index; failed constructions (sparse
	// neighbourhoods) drop out deterministically, and successes merge in
	// trial order. Both selectors share the seed stream so trial i runs
	// on the same fleet from the same source for both — a paired
	// comparison, which is what keeps the variance of the ratio down.
	ss := cfg.stream("sec5-1")
	lifetimes := func(sel vehicular.RouteSelector) (*stats.Accumulator, *stats.Series) {
		// Each trial returns a one-point series fragment (lifetime on x);
		// MergeSeries reassembles the fragments sorted by lifetime, which
		// is exactly the CDF ordering, independent of completion order.
		frags := parallel.Map(cfg.workers(), trials, func(i int) *stats.Series {
			life, ok := vehicular.RouteLifetimeTrial(scfg, sel, ss.Seed(i))
			if !ok {
				return nil
			}
			s := &stats.Series{}
			s.Add(life, 0)
			return s
		})
		cdf := stats.MergeSeries("route lifetime CDF ("+sel.Name()+")", frags...)
		acc := &stats.Accumulator{}
		for i := range cdf.Points {
			cdf.Points[i].Y = float64(i+1) / float64(len(cdf.Points))
			acc.Add(cdf.Points[i].X)
		}
		return acc, cdf
	}
	cteAcc, cteCDF := lifetimes(vehicular.CTESelector{})
	freeAcc, freeCDF := lifetimes(vehicular.RandomSelector{})
	r.Series = append(r.Series, cteCDF, freeCDF)
	cte, free := cteAcc.Values(), freeAcc.Values()

	cteMed, freeMed := cteAcc.Median(), freeAcc.Median()
	r.Columns = []string{"median (s)", "mean (s)", "routes"}
	r.Rows = []Row{
		{Label: "CTE", Values: []float64{cteMed, stats.Mean(cte), float64(len(cte))}},
		{Label: "hint-free", Values: []float64{freeMed, stats.Mean(free), float64(len(free))}},
	}
	factor := 0.0
	if freeMed > 0 {
		factor = cteMed / freeMed
	}
	r.AddCheck("cte-more-stable", factor >= 2,
		"median route lifetime: CTE %.0fs vs hint-free %.0fs (%.1fx, paper 4–5x)", cteMed, freeMed, factor)
	return r
}

// Fig5_1 reproduces Figure 5-1 and the §5.2.3 fix: two clients share an
// AP; client 2 leaves at ~35 s. With the commercial behaviour
// (frame-level fairness, 10 s prune timeout) the remaining client's
// throughput collapses for ~10 s; with hint-aware pruning it barely dips.
func Fig5_1(cfg Config) *Report {
	r := &Report{
		ID:    "fig5-1",
		Title: "Two-client AP throughput; client 2 departs at 35 s",
		Paper: "remaining client drops precipitously for ~10 s, then recovers to full bandwidth",
	}
	base := ap.TwoClientConfig{Policy: ap.FrameFair}
	hintCfg := base
	hintCfg.Prune = ap.PruneConfig{Timeout: 10 * time.Second, HintAware: true, ProbeEvery: time.Second}
	// The two AP simulations are seed-free and independent; run them as
	// a two-trial fan-out.
	runs := parallel.Map(cfg.workers(), 2, func(i int) ap.TwoClientResult {
		if i == 0 {
			return ap.RunTwoClients(base)
		}
		return ap.RunTwoClients(hintCfg)
	})
	legacy, hinted := runs[0], runs[1]

	legacy.Client1.Name = "client 1 (legacy AP)"
	hinted.Client1.Name = "client 1 (hint-aware AP)"
	r.Series = append(r.Series, legacy.Client1, legacy.Client2, hinted.Client1)

	// Quantify the collapse: client 1's mean throughput in the windows
	// before departure, during the open-loop retry interval, and after
	// pruning.
	window := func(s *stats.Series, from, to float64) float64 {
		var xs []float64
		for _, p := range s.Points {
			if p.X >= from && p.X < to {
				xs = append(xs, p.Y)
			}
		}
		return stats.Mean(xs)
	}
	before := window(legacy.Client1, 20, 34)
	during := window(legacy.Client1, 36, 44)
	after := window(legacy.Client1, 48, 58)
	hintDuring := window(hinted.Client1, 36, 44)

	r.Columns = []string{"Mbps"}
	r.Rows = []Row{
		{Label: "legacy before depart", Values: []float64{before}},
		{Label: "legacy during retries", Values: []float64{during}},
		{Label: "legacy after prune", Values: []float64{after}},
		{Label: "hint-aware during", Values: []float64{hintDuring}},
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("legacy AP pruned at %.1fs; hint-aware at %.1fs",
			legacy.PruneAt.Seconds(), hinted.PruneAt.Seconds()))

	r.AddCheck("collapse-during-retries", during < 0.5*before,
		"client 1 throughput %.1f → %.1f Mbps while the AP retries open-loop", before, during)
	r.AddCheck("recovers-after-prune", after > 1.5*before,
		"client 1 recovers to the whole channel: %.1f Mbps (was sharing at %.1f)", after, before)
	r.AddCheck("hint-avoids-collapse", hintDuring > 2*during,
		"hint-aware AP keeps client 1 at %.1f Mbps vs %.1f legacy", hintDuring, during)
	return r
}

// Sec5_2 evaluates the remaining AP policies: hint-aware association
// scoring (§5.2.1) picks the AP with the longest expected association,
// and mobile-favored scheduling (§5.2.2) increases aggregate delivered
// traffic when a mobile client will soon depart.
func Sec5_2(cfg Config) *Report {
	r := &Report{
		ID:    "sec5-2",
		Title: "Adaptive association and packet scheduling",
		Paper: "heading-aware association predicts longer associations; favoring the mobile client raises aggregate throughput",
	}
	score := ap.DefaultAssociationScore()

	// Association: a client walking toward AP-B should pick AP-B even
	// though AP-A is currently stronger.
	toward := ap.ClientHints{Moving: true, HeadingDeg: 90, SpeedMps: 1.5, BearingToAPDeg: 90, RSSdB: 12}
	away := ap.ClientHints{Moving: true, HeadingDeg: 90, SpeedMps: 1.5, BearingToAPDeg: 270, RSSdB: 15}
	hintPick := ap.BestAP(score, []ap.ClientHints{away, toward})
	rssPick := ap.BestAPByRSS([]ap.ClientHints{away, toward})
	r.AddCheck("association-prefers-approach", hintPick == 1 && rssPick == 0,
		"hint-aware picks the approached AP (idx %d); RSS-only picks the one being left (idx %d)", hintPick, rssPick)

	// Scheduling: client 2 departs at 20 s with a finite backlog; the
	// static client's batch is finite in time anyway, so dedicating more
	// of the pre-departure window to the mobile client raises the total.
	base := ap.TwoClientConfig{
		Total:         40 * time.Second,
		DepartAt:      20 * time.Second,
		DepartWarning: 10 * time.Second, // the client roams for 10 s before leaving
		MobileShare:   0.85,
		Policy:        ap.FrameFair,
	}
	fav := base
	fav.Policy = ap.MobileFavored
	sched := parallel.Map(cfg.workers(), 2, func(i int) ap.TwoClientResult {
		if i == 0 {
			return ap.RunTwoClients(base)
		}
		return ap.RunTwoClients(fav)
	})
	fair, favored := sched[0], sched[1]

	r.Columns = []string{"client1 Mb", "client2 Mb", "total Mb"}
	r.Rows = []Row{
		{Label: "frame-fair", Values: []float64{fair.Total1, fair.Total2, fair.Total1 + fair.Total2}},
		{Label: "mobile-favored", Values: []float64{favored.Total1, favored.Total2, favored.Total1 + favored.Total2}},
	}
	r.AddCheck("favoring-mobile-raises-client2", favored.Total2 > 1.15*fair.Total2,
		"mobile client receives %.0f Mb vs %.0f under frame fairness", favored.Total2, fair.Total2)
	return r
}

// Sec5_3 evaluates the §5.3 PHY hint: outdoors the delay spread exceeds
// the standard 0.8 µs cyclic prefix; a GPS-lock hint lets the node pick
// the long prefix directly, recovering most of the throughput that ISI
// destroys, without an empirical search.
func Sec5_3(cfg Config) *Report {
	r := &Report{
		ID:    "sec5-3",
		Title: "Cyclic prefix selection with an outdoor hint",
		Paper: "802.11a works poorly outdoors with the standard prefix; a hint makes the search unnecessary",
	}
	const snr = 21.0
	indoorDelay := 200 * time.Nanosecond
	outdoorDelay := 1500 * time.Nanosecond
	rate := phy.Rate54

	stdIn := phy.EffectiveThroughputMbps(rate, phy.GI800, snr, indoorDelay, 1000)
	stdOut := phy.EffectiveThroughputMbps(rate, phy.GI800, snr, outdoorDelay, 1000)
	hintOut := phy.EffectiveThroughputMbps(rate, phy.GuardIntervalForEnvironment(true), snr, outdoorDelay, 1000)
	bestOut := phy.EffectiveThroughputMbps(rate, phy.BestGuardInterval(rate, snr, outdoorDelay, 1000), snr, outdoorDelay, 1000)

	r.Columns = []string{"Mbps"}
	r.Rows = []Row{
		{Label: "indoor, GI 0.8us", Values: []float64{stdIn}},
		{Label: "outdoor, GI 0.8us", Values: []float64{stdOut}},
		{Label: "outdoor, hint GI 1.6us", Values: []float64{hintOut}},
		{Label: "outdoor, exhaustive best", Values: []float64{bestOut}},
	}
	r.AddCheck("outdoor-hurts-standard-prefix", stdOut < 0.5*stdIn,
		"outdoor delay spread cuts GI0.8 throughput %.1f → %.1f Mbps", stdIn, stdOut)
	r.AddCheck("hint-recovers", hintOut > 2*stdOut,
		"outdoor hint prefix delivers %.1f vs %.1f Mbps", hintOut, stdOut)
	r.AddCheck("hint-matches-search", hintOut >= 0.95*bestOut,
		"hint pick %.1f ≈ exhaustive best %.1f Mbps", hintOut, bestOut)
	return r
}

// Sec5_4 evaluates the §5.4 power policy on a scenario with dead spots
// and a fast-vehicle phase: the hint-aware policy powers the radio down
// when scanning is futile and saves most of the scan energy without
// missing meaningful connectivity.
func Sec5_4(cfg Config) *Report {
	r := &Report{
		ID:    "sec5-4",
		Title: "Movement-based radio power saving",
		Paper: "power down when static with no AP, or moving too fast for Wi-Fi; wake on movement hints",
	}
	total := 10 * time.Minute
	// Scenario: 0–3 min parked in a dead spot; 3–5 min walking through
	// coverage; 5–8 min driving fast (no useful Wi-Fi); 8–10 min walking
	// in coverage again.
	scenario := func(t time.Duration) power.Input {
		switch {
		case t < 3*time.Minute:
			return power.Input{Moving: false, SpeedMps: 0, APAvailable: false}
		case t < 5*time.Minute:
			return power.Input{Moving: true, SpeedMps: 1.4, APAvailable: true}
		case t < 8*time.Minute:
			return power.Input{Moving: true, SpeedMps: 28, APAvailable: false}
		default:
			return power.Input{Moving: true, SpeedMps: 1.4, APAvailable: true}
		}
	}
	model := power.DefaultEnergyModel()
	aware := power.Simulate(power.NewPolicy(true), model, 100*time.Millisecond, total, scenario)
	naive := power.Simulate(power.NewPolicy(false), model, 100*time.Millisecond, total, scenario)

	r.Columns = []string{"energy mJ", "missed s", "off s"}
	r.Rows = []Row{
		{Label: "hint-aware", Values: []float64{aware.EnergyMJ, aware.MissedConnectivity.Seconds(), aware.TimeIn[power.RadioOff].Seconds()}},
		{Label: "hint-oblivious", Values: []float64{naive.EnergyMJ, naive.MissedConnectivity.Seconds(), naive.TimeIn[power.RadioOff].Seconds()}},
	}
	saving := 1 - aware.EnergyMJ/naive.EnergyMJ
	r.AddCheck("saves-energy", saving > 0.15,
		"hint-aware saves %.0f%% energy (%.0f vs %.0f mJ)", 100*saving, aware.EnergyMJ, naive.EnergyMJ)
	r.AddCheck("no-extra-missed-connectivity", aware.MissedConnectivity <= naive.MissedConnectivity+5*time.Second,
		"missed connectivity: aware %.0fs vs naive %.0fs", aware.MissedConnectivity.Seconds(), naive.MissedConnectivity.Seconds())
	return r
}
