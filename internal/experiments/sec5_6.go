package experiments

import (
	"time"

	"repro/internal/channel"
	"repro/internal/hints"
	"repro/internal/phy"
	"repro/internal/rate"
	"repro/internal/ratesim"
	"repro/internal/sensors"
)

func init() {
	register("sec5-6", "microphone hint: static node in a dynamic environment", Sec5_6, tags("ch5", "sensors", "paper"))
}

// pinned wraps an adapter so the MAC harness cannot drive its movement
// hint: the §5.6 scenario is precisely one where the movement hint
// (always false — the device is stationary) must NOT select the
// strategy; the microphone hint does.
type pinned struct{ inner rate.Adapter }

func (p pinned) Name() string                        { return p.inner.Name() }
func (p pinned) PickRate(now time.Duration) phy.Rate { return p.inner.PickRate(now) }
func (p pinned) Observe(fb rate.Feedback)            { p.inner.Observe(fb) }
func (p pinned) Reset()                              { p.inner.Reset() }

// sec56Protocols names the strategies §5.6 compares.
var sec56Protocols = []string{"NoiseHintAware", "RapidSample", "MovementHintAware", "SampleRate"}

// Sec5_6 evaluates the §5.6 microphone hint. A *static* node surrounded
// by activity (pedestrians, cars) sees channel dynamics like a moving
// node's — but its accelerometer is quiet, so the movement hint stays
// false and a movement-hint-aware protocol keeps SampleRate, the wrong
// strategy. The paper's observation: "in our experiments in such
// environments, RapidSample performed better than SampleRate", and a
// microphone detects the condition because ambient noise variation
// correlates with nearby activity.
func Sec5_6(cfg Config) *Report {
	// Detection: quiet then busy surroundings, one deterministic trial.
	cfg.trials("sec5-6/mic", 1, func(i int, em *Emitter) {
		mic := sensors.NewMicrophone(sensors.DefaultMicConfig(), cfg.stream("sec5-6/mic").Seed(i))
		activity := func(at time.Duration) float64 {
			if at >= 20*time.Second {
				return 1
			}
			return 0
		}
		micSamples := mic.Generate(activity, 40*time.Second)
		det := hints.NewNoiseDetector()
		var rose time.Duration = -1
		falseBusy := 0
		for _, s := range micSamples {
			d := det.Update(s)
			if d && s.T < 20*time.Second {
				falseBusy++
			}
			if d && rose < 0 && s.T >= 20*time.Second {
				rose = s.T - 20*time.Second
			}
		}
		em.Add("rose", float64(rose))
		em.Add("falsebusy", float64(falseBusy))
	})

	// Throughput: the device is stationary, but the surroundings induce
	// mobility-grade fading. The trace is generated with mobile-channel
	// dynamics while the ground-truth *device* mobility — what the
	// accelerometer and hence the movement hint see — is static.
	total := 20 * time.Second
	envSched := sensors.Schedule{{Start: 0, End: total, Mode: sensors.Walk}} // surroundings churn
	n := cfg.scaleInt(10, 4)
	// One trial per trace; each derives adapter and MAC seeds from the
	// stream by trial index and emits the four protocols' throughputs.
	traces := cfg.stream("sec5-6/traces")
	adapters := cfg.stream("sec5-6/adapters")
	macs := cfg.stream("sec5-6/macs")
	var pool channel.TracePool
	cfg.trials("sec5-6/tput", n, func(rep int, em *Emitter) {
		seed := adapters.Seed(rep)
		tr := pool.Generate(channel.Config{Env: channel.Office, Sched: envSched, Total: total, Seed: traces.Seed(rep)})
		defer pool.Put(tr)
		for i := range tr.Slots {
			tr.Slots[i].Moving = false // the device itself never moves
		}

		run := func(a rate.Adapter) float64 {
			res := ratesim.Run(ratesim.Config{Trace: tr, Adapter: a, Workload: ratesim.TCP, Seed: macs.Seed(rep)})
			return res.ThroughputMbps
		}
		sr := rate.NewSampleRate(seed)
		sr.Window = time.Second // even the mobile-friendliest window
		em.Add("SampleRate", run(sr))
		em.Add("RapidSample", run(rate.NewRapidSample()))

		// Movement-hint-aware: the harness drives SetMoving from the
		// (always false) ground truth → it stays on SampleRate.
		em.Add("MovementHintAware", run(rate.NewHintAware(seed)))

		// Noise-hint-aware: the microphone hint (dynamic throughout this
		// trace) selects RapidSample; pinned so the harness cannot
		// override it with the movement ground truth.
		na := rate.NewHintAware(seed)
		na.SetMoving(true)
		em.Add("NoiseHintAware", run(pinned{inner: na}))
	})
	if cfg.collecting() {
		return nil
	}

	r := &Report{
		ID:    "sec5-6",
		Title: "Static node, dynamic environment: the microphone hint",
		Paper: "RapidSample beats SampleRate when the surroundings move; microphone noise variation detects the condition",
	}
	rose := time.Duration(cfg.val("rose"))
	falseBusy := int(cfg.val("falsebusy"))
	r.AddCheck("mic-detects-activity", rose >= 0 && rose < 10*time.Second,
		"dynamic-environment hint rose %v after the corridor got busy", rose)
	r.AddCheck("mic-quiet-clean", falseBusy <= 2,
		"%d false dynamic reports while quiet", falseBusy)

	r.Columns = []string{"Mbps"}
	for _, name := range sec56Protocols {
		r.Rows = append(r.Rows, Row{Label: name, Values: []float64{cfg.acc(name).Mean()}})
	}
	rs := cfg.acc("RapidSample").Mean()
	sr := cfg.acc("SampleRate").Mean()
	na := cfg.acc("NoiseHintAware").Mean()
	mh := cfg.acc("MovementHintAware").Mean()
	r.AddCheck("rapidsample-beats-samplerate", rs > sr,
		"RapidSample %.2f vs SampleRate %.2f in a dynamic environment", rs, sr)
	r.AddCheck("noise-hint-recovers-rapidsample", na > 0.9*rs,
		"noise-hint switcher %.2f ≈ RapidSample %.2f", na, rs)
	r.AddCheck("movement-hint-insufficient", na > mh,
		"noise hint %.2f beats movement-hint-only %.2f (whose hint never rises)", na, mh)
	return r
}
