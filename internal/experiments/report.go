// Package experiments contains one runner per table and figure in the
// paper's evaluation, producing reports with the same rows/series the
// paper presents plus automated shape checks (who wins, by roughly what
// factor, where crossovers fall). The cmd/hintbench binary prints these
// reports; the test suite and the root-level benchmarks assert their
// checks.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/parallel"
	"repro/internal/phy"
	"repro/internal/stats"
)

// Config controls experiment scale so the same runner serves quick tests
// and full reproductions.
type Config struct {
	// Scale multiplies trace counts and durations; 1.0 reproduces the
	// paper's scale, smaller values run faster. Values ≤ 0 mean 1.0.
	Scale float64
	// Seed makes runs deterministic.
	Seed int64
	// Workers bounds the goroutines an experiment fans its independent
	// trials across; ≤ 0 means one per CPU. The report is bit-identical
	// for any value: every trial derives its own seed from Seed by trial
	// index (see Config.stream) and per-trial results merge in trial
	// order, never in completion order.
	Workers int

	// sh is the shard-aware trial engine state (see exec.go). The
	// register wrapper installs the in-process engine when a caller
	// leaves it nil; RunShard and MergeShards install the worker and
	// coordinator engines.
	sh *shardExec
}

// workers returns the effective worker count.
func (c Config) workers() int {
	return parallel.Workers(c.Workers, 1<<30)
}

// stream returns the experiment-labelled seed stream; trials must take
// their seeds from it by trial index so that runs are reproducible
// regardless of scheduling.
func (c Config) stream(label string) parallel.SeedStream {
	return parallel.NewSeedStream(c.Seed).Derive(label)
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

// scaleInt scales n, keeping at least min.
func (c Config) scaleInt(n, min int) int {
	v := int(float64(n) * c.scale())
	if v < min {
		v = min
	}
	return v
}

// Check is one automated shape assertion of a report.
type Check struct {
	Name   string
	OK     bool
	Detail string
}

// Row is one table row: a label and named values in column order.
type Row struct {
	Label  string
	Values []float64
}

// Report is the output of one experiment.
type Report struct {
	// ID matches the DESIGN.md experiment index ("fig3-5", "table5-1").
	ID string
	// Title describes the artifact being reproduced.
	Title string
	// Paper states the expectation from the paper, for side-by-side
	// reading.
	Paper string
	// Columns names the value columns of Rows.
	Columns []string
	Rows    []Row
	// Series carries figure curves.
	Series []*stats.Series
	// Notes carries free-form observations.
	Notes []string
	// Checks carries the automated shape assertions.
	Checks []Check
}

// AddCheck records a shape assertion.
func (r *Report) AddCheck(name string, ok bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
}

// Failed returns the names of failed checks.
func (r *Report) Failed() []string {
	var out []string
	for _, c := range r.Checks {
		if !c.OK {
			out = append(out, c.Name+": "+c.Detail)
		}
	}
	return out
}

// String renders the report for the terminal.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Paper)
	}
	if len(r.Rows) > 0 {
		fmt.Fprintf(&b, "%-28s", "")
		for _, c := range r.Columns {
			fmt.Fprintf(&b, "%14s", c)
		}
		b.WriteString("\n")
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "%-28s", row.Label)
			for _, v := range row.Values {
				fmt.Fprintf(&b, "%14.4g", v)
			}
			b.WriteString("\n")
		}
	}
	for _, s := range r.Series {
		if s.Len() > 0 {
			fmt.Fprintf(&b, "-- series: %s (%d points)\n", s.Name, s.Len())
		}
	}
	if len(r.Series) > 0 {
		b.WriteString(stats.Chart(100, 18, r.Series...))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.OK {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "check [%s] %s: %s\n", mark, c.Name, c.Detail)
	}
	return b.String()
}

// Runner is a named experiment entry point. Run returns the finished
// report — or nil when the Config carries a shard-worker engine
// (RunShard is the only caller that sets one up and it discards the
// nil).
type Runner struct {
	ID   string
	Run  func(Config) *Report
	Desc string
	// Frames lists the frame payload sizes (phy LUT keys) the
	// experiment's hot loops read; nil means phy.DefaultFrameBytes. A
	// fleet warms exactly these tables before dispatching the experiment
	// (see FrameSizes), instead of guessing from a fixed list.
	Frames []int
}

// runnerOpt customises a registration beyond (id, desc, run).
type runnerOpt func(*Runner)

// frames declares the frame payload sizes the experiment's trials hit,
// for the warm-worker prepare step. Experiments that leave it out
// default to phy.DefaultFrameBytes.
func frames(sizes ...int) runnerOpt {
	return func(r *Runner) { r.Frames = sizes }
}

var registry []Runner

// register adds an experiment to the global registry (called from each
// experiment file's init). The wrapper installs the in-process trial
// engine when the caller did not set one up, so plain Runner.Run keeps
// working unchanged while RunShard/MergeShards can substitute the
// worker and coordinator engines.
func register(id, desc string, run func(Config) *Report, opts ...runnerOpt) {
	wrapped := func(cfg Config) *Report {
		if cfg.sh == nil {
			cfg.sh = newExec(modeRun)
		}
		return run(cfg)
	}
	r := Runner{ID: id, Run: wrapped, Desc: desc}
	for _, opt := range opts {
		opt(&r)
	}
	registry = append(registry, r)
}

// FrameSizes returns the sorted, deduplicated union of the frame
// payload sizes the named experiments declare (phy.DefaultFrameBytes
// for experiments that declare none, and for ids not in the registry) —
// the exact table set a fleet should phy.Warm before running them. With
// no ids it covers the whole registry.
func FrameSizes(ids ...string) []int {
	set := map[int]bool{}
	add := func(r Runner) {
		if len(r.Frames) == 0 {
			set[phy.DefaultFrameBytes] = true
			return
		}
		for _, b := range r.Frames {
			set[b] = true
		}
	}
	if len(ids) == 0 {
		for _, r := range registry {
			add(r)
		}
	}
	for _, id := range ids {
		r, ok := ByID(id)
		if !ok {
			set[phy.DefaultFrameBytes] = true
			continue
		}
		add(r)
	}
	out := make([]int, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// All returns every registered experiment sorted by id.
func All() []Runner {
	out := append([]Runner(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Runner, bool) {
	for _, r := range registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
