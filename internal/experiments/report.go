// Package experiments contains one runner per table and figure in the
// paper's evaluation, producing reports with the same rows/series the
// paper presents plus automated shape checks (who wins, by roughly what
// factor, where crossovers fall). The cmd/hintbench binary prints these
// reports; the test suite and the root-level benchmarks assert their
// checks.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/parallel"
	"repro/internal/phy"
	"repro/internal/stats"
)

// Config controls experiment scale so the same runner serves quick tests
// and full reproductions.
type Config struct {
	// Scale multiplies trace counts and durations; 1.0 reproduces the
	// paper's scale, smaller values run faster. Values ≤ 0 mean 1.0.
	Scale float64
	// Seed makes runs deterministic.
	Seed int64
	// Workers bounds the goroutines an experiment fans its independent
	// trials across; ≤ 0 means one per CPU. The report is bit-identical
	// for any value: every trial derives its own seed from Seed by trial
	// index (see Config.stream) and per-trial results merge in trial
	// order, never in completion order.
	Workers int

	// sh is the shard-aware trial engine state (see exec.go). The
	// register wrapper installs the in-process engine when a caller
	// leaves it nil; RunShard and MergeShards install the worker and
	// coordinator engines.
	sh *shardExec
}

// workers returns the effective worker count.
func (c Config) workers() int {
	return parallel.Workers(c.Workers, 1<<30)
}

// stream returns the experiment-labelled seed stream; trials must take
// their seeds from it by trial index so that runs are reproducible
// regardless of scheduling.
func (c Config) stream(label string) parallel.SeedStream {
	return parallel.NewSeedStream(c.Seed).Derive(label)
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

// scaleInt scales n, keeping at least min.
func (c Config) scaleInt(n, min int) int {
	v := int(float64(n) * c.scale())
	if v < min {
		v = min
	}
	return v
}

// Check is one automated shape assertion of a report.
type Check struct {
	Name   string
	OK     bool
	Detail string
}

// Row is one table row: a label and named values in column order.
type Row struct {
	Label  string
	Values []float64
}

// Report is the output of one experiment.
type Report struct {
	// ID matches the DESIGN.md experiment index ("fig3-5", "table5-1").
	ID string
	// Title describes the artifact being reproduced.
	Title string
	// Paper states the expectation from the paper, for side-by-side
	// reading.
	Paper string
	// Columns names the value columns of Rows.
	Columns []string
	Rows    []Row
	// Series carries figure curves.
	Series []*stats.Series
	// Notes carries free-form observations.
	Notes []string
	// Checks carries the automated shape assertions.
	Checks []Check
}

// AddCheck records a shape assertion.
func (r *Report) AddCheck(name string, ok bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
}

// Failed returns the names of failed checks.
func (r *Report) Failed() []string {
	var out []string
	for _, c := range r.Checks {
		if !c.OK {
			out = append(out, c.Name+": "+c.Detail)
		}
	}
	return out
}

// String renders the report for the terminal.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Paper)
	}
	if len(r.Rows) > 0 {
		fmt.Fprintf(&b, "%-28s", "")
		for _, c := range r.Columns {
			fmt.Fprintf(&b, "%14s", c)
		}
		b.WriteString("\n")
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "%-28s", row.Label)
			for _, v := range row.Values {
				fmt.Fprintf(&b, "%14.4g", v)
			}
			b.WriteString("\n")
		}
	}
	for _, s := range r.Series {
		if s.Len() > 0 {
			fmt.Fprintf(&b, "-- series: %s (%d points)\n", s.Name, s.Len())
		}
	}
	if len(r.Series) > 0 {
		b.WriteString(stats.Chart(100, 18, r.Series...))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.OK {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "check [%s] %s: %s\n", mark, c.Name, c.Detail)
	}
	return b.String()
}

// Runner is a named experiment entry point. Run returns the finished
// report — or nil when the Config carries a shard-worker engine
// (RunShard is the only caller that sets one up and it discards the
// nil).
type Runner struct {
	ID   string
	Run  func(Config) *Report
	Desc string
	// Frames lists the frame payload sizes (phy LUT keys) the
	// experiment's hot loops read; nil means phy.DefaultFrameBytes. A
	// fleet warms exactly these tables before dispatching the experiment
	// (see Registry.FrameSizes), instead of guessing from a fixed list.
	Frames []int
	// Tags group experiments for bulk selection (Registry.ByTag,
	// hintbench -tag): the chapter ("ch3", "ch5"), the workload family
	// ("rate", "probing", "scenario"), the scale ("city").
	Tags []string
	// Plan, when non-nil, describes the experiment's dominant trial
	// decomposition as data — the Cells×Units sub-trial grid it will
	// declare to the shard engine at the given Config — so operators and
	// schedulers can see how a heavy experiment splits without running
	// it. Nil means a flat trial loop.
	Plan func(Config) parallel.SubPlan
}

// HasTag reports whether the runner carries the tag.
func (r Runner) HasTag(tag string) bool {
	for _, t := range r.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Registry is an ordered, ID-unique collection of experiments. The
// package-level Default registry collects every init-time registration;
// tests build private registries to exercise tooling against synthetic
// experiment sets. All lookup methods are read-only and safe for
// concurrent use after registration finishes.
type Registry struct {
	runners []Runner
	index   map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]int{}}
}

// Register validates and adds one experiment. The stored Run is wrapped
// to install the in-process trial engine when the caller did not set
// one up, so plain Runner.Run keeps working unchanged while
// RunShard/MergeShards can substitute the worker and coordinator
// engines.
func (g *Registry) Register(r Runner) error {
	if r.ID == "" {
		return fmt.Errorf("experiments: Register with empty ID")
	}
	if r.Run == nil {
		return fmt.Errorf("experiments: Register(%q) with nil Run", r.ID)
	}
	if _, dup := g.index[r.ID]; dup {
		return fmt.Errorf("experiments: Register(%q): id already registered", r.ID)
	}
	run := r.Run
	r.Run = func(cfg Config) *Report {
		if cfg.sh == nil {
			cfg.sh = newExec(modeRun)
		}
		return run(cfg)
	}
	g.index[r.ID] = len(g.runners)
	g.runners = append(g.runners, r)
	return nil
}

// MustRegister is Register for init-time use; registration errors are
// programming errors there.
func (g *Registry) MustRegister(r Runner) {
	if err := g.Register(r); err != nil {
		panic(err)
	}
}

// All returns every registered experiment sorted by id.
func (g *Registry) All() []Runner {
	out := append([]Runner(nil), g.runners...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given id.
func (g *Registry) ByID(id string) (Runner, bool) {
	i, ok := g.index[id]
	if !ok {
		return Runner{}, false
	}
	return g.runners[i], true
}

// ByTag returns the experiments carrying the tag, sorted by id.
func (g *Registry) ByTag(tag string) []Runner {
	var out []Runner
	for _, r := range g.runners {
		if r.HasTag(tag) {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IDs returns every registered id, sorted.
func (g *Registry) IDs() []string {
	out := make([]string, 0, len(g.runners))
	for _, r := range g.runners {
		out = append(out, r.ID)
	}
	sort.Strings(out)
	return out
}

// Tags returns the sorted distinct tags across the registry.
func (g *Registry) Tags() []string {
	set := map[string]bool{}
	for _, r := range g.runners {
		for _, t := range r.Tags {
			set[t] = true
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// FrameSizes returns the sorted, deduplicated union of the frame
// payload sizes the named experiments declare (phy.DefaultFrameBytes
// for experiments that declare none, and for ids not in the registry) —
// the exact table set a fleet should phy.Warm before running them. With
// no ids it covers the whole registry.
func (g *Registry) FrameSizes(ids ...string) []int {
	set := map[int]bool{}
	add := func(r Runner) {
		if len(r.Frames) == 0 {
			set[phy.DefaultFrameBytes] = true
			return
		}
		for _, b := range r.Frames {
			set[b] = true
		}
	}
	if len(ids) == 0 {
		for _, r := range g.runners {
			add(r)
		}
	}
	for _, id := range ids {
		r, ok := g.ByID(id)
		if !ok {
			set[phy.DefaultFrameBytes] = true
			continue
		}
		add(r)
	}
	out := make([]int, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// Default is the registry every init-time registration lands in and the
// one the CLIs, the campaign engine, and the cluster fleet consume.
var Default = NewRegistry()

// runnerOpt customises a registration beyond (id, desc, run).
type runnerOpt func(*Runner)

// frames declares the frame payload sizes the experiment's trials hit,
// for the warm-worker prepare step. Experiments that leave it out
// default to phy.DefaultFrameBytes.
func frames(sizes ...int) runnerOpt {
	return func(r *Runner) { r.Frames = sizes }
}

// tags labels the experiment for bulk selection.
func tags(ts ...string) runnerOpt {
	return func(r *Runner) { r.Tags = ts }
}

// plan publishes the experiment's sub-trial decomposition as data.
func plan(fn func(Config) parallel.SubPlan) runnerOpt {
	return func(r *Runner) { r.Plan = fn }
}

// register adds an experiment to the Default registry (called from each
// experiment file's init).
func register(id, desc string, run func(Config) *Report, opts ...runnerOpt) {
	r := Runner{ID: id, Run: run, Desc: desc}
	for _, opt := range opts {
		opt(&r)
	}
	Default.MustRegister(r)
}

// FrameSizes, All, and ByID delegate to the Default registry.
func FrameSizes(ids ...string) []int { return Default.FrameSizes(ids...) }

// All returns every experiment in the Default registry sorted by id.
func All() []Runner { return Default.All() }

// ByID looks up an experiment in the Default registry.
func ByID(id string) (Runner, bool) { return Default.ByID(id) }
