package experiments

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/parallel"
)

// TestReportsIdenticalAcrossWorkerCounts asserts the engine's hard
// invariant: for a fixed root seed, every experiment's rendered report —
// rows, series, notes and checks — is byte-identical whether its trials
// run serially or fan out across any number of workers. Per-trial seeds
// derive from the trial index and merges happen in trial order, so the
// scheduler must not be able to influence the output.
func TestReportsIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	// Determinism needs scheduling diversity, not statistical power:
	// the smallest scale keeps the worker pool busy while the suite
	// stays fast.
	const scale = 0.1
	workerCounts := []int{4, 8, runtime.NumCPU()}
	if underRace {
		// One concurrent configuration suffices for the detector.
		workerCounts = []int{8}
	}
	// Dedup (NumCPU may equal an entry, or 1 on small machines): each
	// distinct worker count runs once.
	seen := map[int]bool{1: true}
	var counts []int
	for _, w := range workerCounts {
		if !seen[w] {
			seen[w] = true
			counts = append(counts, w)
		}
	}
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			t.Parallel()
			base := exp.Run(Config{Scale: scale, Seed: 42, Workers: 1}).String()
			for _, w := range counts {
				got := exp.Run(Config{Scale: scale, Seed: 42, Workers: w}).String()
				if got != base {
					t.Errorf("report differs between Workers=1 and Workers=%d:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
						w, base, w, got)
				}
			}
		})
	}
}

// TestReportsIdenticalAcrossShards is the golden shard-parity test: for
// every registered experiment, splitting the trial space into K shard
// worker runs, serializing each shard's partial through the wire codec,
// and merging the deserialized partials must reproduce the
// single-process report byte for byte — for every K, including shard
// counts that leave some shards empty. Partials are handed to the
// coordinator out of order to prove the merge does not depend on worker
// completion order.
func TestReportsIdenticalAcrossShards(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	const scale = 0.1
	shardCounts := []int{1, 2, 3, runtime.NumCPU()}
	if underRace {
		// One multi-shard configuration suffices for the detector.
		shardCounts = []int{3}
	}
	seen := map[int]bool{}
	var counts []int
	for _, k := range shardCounts {
		if !seen[k] {
			seen[k] = true
			counts = append(counts, k)
		}
	}
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			t.Parallel()
			cfg := Config{Scale: scale, Seed: 42}
			base := exp.Run(cfg).String()
			for _, k := range counts {
				parts := make([]*Partial, 0, k)
				for _, shard := range parallel.NewShardPlan(k).Shards() {
					p, err := RunShard(exp.ID, cfg, shard)
					if err != nil {
						t.Fatalf("RunShard %v: %v", shard, err)
					}
					// Round-trip through the wire format: the parity
					// guarantee must survive serialize → deserialize.
					var buf bytes.Buffer
					if err := p.Encode(&buf); err != nil {
						t.Fatalf("encode shard %v: %v", shard, err)
					}
					p2, err := DecodePartial(&buf)
					if err != nil {
						t.Fatalf("decode shard %v: %v", shard, err)
					}
					// Prepend: the coordinator sees shards in reverse
					// completion order.
					parts = append([]*Partial{p2}, parts...)
				}
				rep, err := MergeShards(parts, 0)
				if err != nil {
					t.Fatalf("MergeShards K=%d: %v", k, err)
				}
				if got := rep.String(); got != base {
					t.Errorf("report differs between in-process and %d-shard merge:\n--- in-process ---\n%s\n--- %d shards ---\n%s",
						k, base, k, got)
				}
			}
		})
	}
}

// TestReportsDifferBySeed guards against an over-derived seed stream
// accidentally ignoring the root: different seeds must produce different
// reports for the stochastic experiments.
func TestReportsDifferBySeed(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	exp, ok := ByID("table5-1")
	if !ok {
		t.Fatal("table5-1 not registered")
	}
	a := exp.Run(Config{Scale: 0.1, Seed: 42}).String()
	b := exp.Run(Config{Scale: 0.1, Seed: 43}).String()
	if a == b {
		t.Fatal("reports for different seeds are identical")
	}
}
