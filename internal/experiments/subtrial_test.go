package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/parallel"
)

// subTrialExperiments are the heavy runners that decompose their trials
// into sub-trial grids; their loop records must carry the plan.
var subTrialExperiments = []string{"fig3-5", "fig3-6", "fig3-7", "fig3-8", "fig4-4", "fig4-5", "fig4-6"}

// TestSubTrialPlanTravelsOnWire asserts that a sub-trial loop's
// LoopPartial carries the declared Cells×Units plan and that the plan
// multiplies out to the trial-range size.
func TestSubTrialPlanTravelsOnWire(t *testing.T) {
	cfg := Config{Scale: 0.1, Seed: 7}
	p, err := RunShard("fig3-8", cfg, parallel.Shard{Index: 0, Count: 1})
	if err != nil {
		t.Fatalf("RunShard: %v", err)
	}
	if len(p.Loops) != 1 {
		t.Fatalf("recorded %d loops, want 1", len(p.Loops))
	}
	loop := p.Loops[0]
	// fig3-8 at scale 0.1: one environment × scaleInt(10,4)=4 traces,
	// six protocols per cell.
	if loop.Cells != 4 || loop.Units != 6 || loop.N != 24 {
		t.Errorf("loop plan = %d×%d over %d trials, want 4×6 over 24", loop.Cells, loop.Units, loop.N)
	}
}

// TestMergeShardsRejectsSubPlanMismatch asserts the two plan guards: a
// shard disagreeing with its peers on the plan, and a complete partial
// set whose plan does not match the decomposition the experiment
// declares (stale partials from a build with a different split).
func TestMergeShardsRejectsSubPlanMismatch(t *testing.T) {
	fixture := func() []*Partial {
		var parts []*Partial
		for _, shard := range parallel.NewShardPlan(2).Shards() {
			p, err := RunShard("fig3-8", Config{Scale: 0.1, Seed: 7}, shard)
			if err != nil {
				t.Fatalf("RunShard %v: %v", shard, err)
			}
			parts = append(parts, p)
		}
		return parts
	}

	disagree := fixture()
	disagree[1].Loops[0].Cells, disagree[1].Loops[0].Units = 6, 4
	if _, err := MergeShards(disagree, 0); err == nil || !strings.Contains(err.Error(), "sub-trial plan") {
		t.Errorf("cross-shard plan disagreement accepted (err=%v)", err)
	}

	stale := fixture()
	for _, p := range stale {
		p.Loops[0].Cells, p.Loops[0].Units = 0, 0
	}
	if _, err := MergeShards(stale, 0); err == nil || !strings.Contains(err.Error(), "stale partials") {
		t.Errorf("plan-less partials for a sub-trial loop accepted (err=%v)", err)
	}
}

// TestDecodePartialSubPlanValidation asserts the envelope checks on the
// wire: half a plan, a plan that does not multiply out to N, and
// hostile counts that would overflow a naive Cells*Units==N check.
func TestDecodePartialSubPlanValidation(t *testing.T) {
	p, err := RunShard("fig3-8", Config{Scale: 0.1, Seed: 7}, parallel.Shard{Index: 0, Count: 1})
	if err != nil {
		t.Fatalf("RunShard: %v", err)
	}
	reencode := func(mutate func(*LoopPartial)) string {
		var buf bytes.Buffer
		saved := *p.Loops[0]
		mutate(p.Loops[0])
		err := p.Encode(&buf)
		*p.Loops[0] = saved
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		return buf.String()
	}

	if _, err := DecodePartial(strings.NewReader(reencode(func(*LoopPartial) {}))); err != nil {
		t.Fatalf("valid sub-trial partial rejected: %v", err)
	}
	cases := map[string]func(*LoopPartial){
		"cells without units": func(lp *LoopPartial) { lp.Units = 0 },
		"units without cells": func(lp *LoopPartial) { lp.Cells = 0 },
		"plan mismatches n":   func(lp *LoopPartial) { lp.Cells = 5 },
		"negative plan":       func(lp *LoopPartial) { lp.Cells, lp.Units = -4, -6 },
		"overflowing plan":    func(lp *LoopPartial) { lp.Cells, lp.Units = 1<<40, 1<<40 },
	}
	for name, mutate := range cases {
		if _, err := DecodePartial(strings.NewReader(reencode(mutate))); err == nil {
			t.Errorf("%s: malformed partial accepted", name)
		}
	}
}

// TestSubTrialShardsSpread is the decomposition half of the issue's
// acceptance criterion: on a four-shard split (the four-worker fleet),
// every restructured heavy experiment must put real work on every
// shard, and the merge must stay byte-identical to the single-process
// run.
func TestSubTrialShardsSpread(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment sweep")
	}
	const k = 4
	for _, id := range subTrialExperiments {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			exp, ok := ByID(id)
			if !ok {
				t.Fatalf("unknown experiment %q", id)
			}
			cfg := Config{Scale: 0.1, Seed: 42}
			want := exp.Run(Config{Scale: cfg.Scale, Seed: cfg.Seed, Workers: 1}).String()

			var parts []*Partial
			busy := 0
			for _, shard := range parallel.NewShardPlan(k).Shards() {
				p, err := RunShard(id, cfg, shard)
				if err != nil {
					t.Fatalf("RunShard %v: %v", shard, err)
				}
				trials := 0
				for _, loop := range p.Loops {
					trials += len(loop.Trials)
				}
				if trials > 0 {
					busy++
				}
				parts = append(parts, p)
			}
			if busy < 2 {
				t.Fatalf("only %d of %d shards carried trials; the experiment does not spread", busy, k)
			}
			rep, err := MergeShards(parts, 0)
			if err != nil {
				t.Fatalf("MergeShards: %v", err)
			}
			if got := rep.String(); got != want {
				t.Errorf("merged report differs from single-process run\n--- merged ---\n%s\n--- single ---\n%s", got, want)
			}
		})
	}
}

// FuzzDecodePartial asserts the partial envelope decoder's contract on
// arbitrary input: error or accept, never panic; accepted partials
// satisfy the envelope invariants the merge relies on.
func FuzzDecodePartial(f *testing.F) {
	for _, shard := range parallel.NewShardPlan(2).Shards() {
		p, err := RunShard("fig3-8", Config{Scale: 0.1, Seed: 7}, shard)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := p.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"version":1,"experiment":"x","shard":0,"shards":1,"loops":[]}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePartial(bytes.NewReader(data))
		if err != nil {
			return
		}
		if p.Version != PartialVersion || p.Experiment == "" || p.Job < 0 {
			t.Fatalf("accepted partial violates envelope invariants: %+v", p)
		}
		sh := parallel.Shard{Index: p.Shard, Count: p.Shards}
		if !sh.Valid() {
			t.Fatalf("accepted partial has invalid shard %v", sh)
		}
		for _, loop := range p.Loops {
			lo, hi := sh.Range(loop.N)
			if loop.Lo != lo || len(loop.Trials) != hi-lo {
				t.Fatalf("accepted loop %q violates its shard range", loop.Label)
			}
			if (loop.Cells != 0) != (loop.Units != 0) {
				t.Fatalf("accepted loop %q carries half a sub-trial plan", loop.Label)
			}
			if loop.Cells != 0 && loop.Cells*loop.Units != loop.N {
				t.Fatalf("accepted loop %q plan %d×%d ≠ %d trials", loop.Label, loop.Cells, loop.Units, loop.N)
			}
		}
	})
}
