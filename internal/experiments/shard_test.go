package experiments

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/parallel"
)

var errSinkClosed = errors.New("sink closed")

// shardFixture collects the partials of a fast experiment split K ways.
func shardFixture(t *testing.T, k int) []*Partial {
	t.Helper()
	cfg := Config{Scale: 0.1, Seed: 7}
	parts := make([]*Partial, 0, k)
	for _, shard := range parallel.NewShardPlan(k).Shards() {
		p, err := RunShard("sec5-3", cfg, shard)
		if err != nil {
			t.Fatalf("RunShard %v: %v", shard, err)
		}
		parts = append(parts, p)
	}
	return parts
}

func TestRunShardRejectsBadInput(t *testing.T) {
	if _, err := RunShard("no-such-experiment", Config{}, parallel.Shard{Index: 0, Count: 1}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := RunShard("sec5-3", Config{}, parallel.Shard{Index: 3, Count: 2}); err == nil {
		t.Error("invalid shard accepted")
	}
}

func TestMergeShardsValidation(t *testing.T) {
	parts := shardFixture(t, 3)

	if _, err := MergeShards(nil, 0); err == nil {
		t.Error("empty partial set accepted")
	}
	if _, err := MergeShards(parts[:2], 0); err == nil {
		t.Error("incomplete shard set accepted")
	}
	if _, err := MergeShards([]*Partial{parts[0], parts[1], parts[1]}, 0); err == nil {
		t.Error("duplicate shard accepted")
	}

	seedMismatch := shardFixture(t, 3)
	seedMismatch[1].Seed = 99
	if _, err := MergeShards(seedMismatch, 0); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Errorf("seed mismatch accepted (err=%v)", err)
	}

	versionMismatch := shardFixture(t, 3)
	versionMismatch[2].Version = PartialVersion + 1
	if _, err := MergeShards(versionMismatch, 0); err == nil {
		t.Error("version mismatch accepted")
	}

	corrupt := shardFixture(t, 1)
	for name := range corrupt[0].Loops[0].Trials[0].Accs {
		corrupt[0].Loops[0].Trials[0].Accs[name] = []byte{0xff, 0xff}
	}
	if _, err := MergeShards(corrupt, 0); err == nil {
		t.Error("corrupted collector payload accepted")
	}

	renamed := shardFixture(t, 1)
	renamed[0].Experiment = "no-such-experiment"
	if _, err := MergeShards(renamed, 0); err == nil {
		t.Error("unknown experiment accepted at merge")
	}

	// Partials whose loop structure matches no current build of the
	// experiment (e.g. recorded by an older binary) must fail with an
	// error, not crash the coordinator.
	stale := shardFixture(t, 1)
	stale[0].Loops[0].Label = "sec5-3/renamed-by-old-build"
	if _, err := MergeShards(stale, 0); err == nil || !strings.Contains(err.Error(), "stale partials") {
		t.Errorf("stale loop structure accepted (err=%v)", err)
	}
}

func TestDecodePartialValidation(t *testing.T) {
	parts := shardFixture(t, 2)
	var buf bytes.Buffer
	if err := parts[1].Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	good := buf.String()

	if _, err := DecodePartial(strings.NewReader(good)); err != nil {
		t.Fatalf("valid partial rejected: %v", err)
	}
	for name, text := range map[string]string{
		"not json":      "{",
		"wrong version": strings.Replace(good, `"version":1`, `"version":7`, 1),
		"bad shard":     strings.Replace(good, `"shard":1`, `"shard":5`, 1),
		"no experiment": strings.Replace(good, `"experiment":"sec5-3"`, `"experiment":""`, 1),
	} {
		if _, err := DecodePartial(strings.NewReader(text)); err == nil {
			t.Errorf("%s: malformed partial accepted", name)
		}
	}
}

// TestShardWorkerSkipsFinish asserts the worker contract: a collect-mode
// run returns no report (the partial is the product) and records one
// loop per cfg.trials call with the plan's slice of each.
func TestShardWorkerSkipsFinish(t *testing.T) {
	cfg := Config{Scale: 0.1, Seed: 7}
	p, err := RunShard("fig3-1", cfg, parallel.Shard{Index: 1, Count: 2})
	if err != nil {
		t.Fatalf("RunShard: %v", err)
	}
	if len(p.Loops) != 1 {
		t.Fatalf("recorded %d loops, want 1", len(p.Loops))
	}
	loop := p.Loops[0]
	if loop.Label != "fig3-1" || loop.N != 2 || loop.Lo != 1 || len(loop.Trials) != 1 {
		t.Errorf("loop = %q n=%d lo=%d trials=%d, want fig3-1 n=2 lo=1 trials=1",
			loop.Label, loop.N, loop.Lo, len(loop.Trials))
	}
}

// TestRunShardStreamDeliversLoopsIncrementally asserts the streaming
// contract: the sink receives the shard's loop records in execution
// order, and a Partial assembled from the streamed records (the
// coordinator's job) is byte-identical to RunShard's.
func TestRunShardStreamDeliversLoopsIncrementally(t *testing.T) {
	cfg := Config{Scale: 0.1, Seed: 7}
	shard := parallel.Shard{Index: 0, Count: 2}
	var streamed []*LoopPartial
	err := RunShardStream("sec5-3", cfg, shard, func(lp *LoopPartial) error {
		streamed = append(streamed, lp)
		return nil
	})
	if err != nil {
		t.Fatalf("RunShardStream: %v", err)
	}
	if len(streamed) == 0 {
		t.Fatal("sink never called")
	}
	assembled := &Partial{
		Version:    PartialVersion,
		Experiment: "sec5-3",
		Shard:      shard.Index,
		Shards:     shard.Count,
		Seed:       cfg.Seed,
		Scale:      cfg.Scale,
		Loops:      streamed,
	}
	direct, err := RunShard("sec5-3", cfg, shard)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := assembled.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := direct.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("streamed partial differs from RunShard partial")
	}
}

// TestRunShardStreamSinkErrorAborts asserts that a broken sink stops the
// run at the loop boundary and surfaces the sink's error instead of
// computing trials nobody can receive; a missing sink is refused.
func TestRunShardStreamSinkErrorAborts(t *testing.T) {
	cfg := Config{Scale: 0.1, Seed: 7}
	shard := parallel.Shard{Index: 0, Count: 1}
	calls := 0
	err := RunShardStream("sec5-3", cfg, shard, func(*LoopPartial) error {
		calls++
		return errSinkClosed
	})
	if err == nil {
		t.Fatal("RunShardStream with a failing sink succeeded")
	}
	if calls != 1 {
		t.Fatalf("sink called %d times after failing, want 1", calls)
	}
	if !strings.Contains(err.Error(), errSinkClosed.Error()) {
		t.Fatalf("error %q does not carry the sink error", err)
	}
	if err := RunShardStream("sec5-3", cfg, shard, nil); err == nil {
		t.Fatal("nil sink accepted")
	}
}
