package experiments

import (
	"time"

	"repro/internal/channel"
	"repro/internal/parallel"
	"repro/internal/phy"
	"repro/internal/sensors"
	"repro/internal/stats"
	"repro/internal/trace"
)

func init() {
	register("fig3-1", "conditional packet-loss probability vs lag, static vs mobile", Fig3_1)
}

// Fig3_1 reproduces Figure 3-1: send back-to-back 1000-byte packets at
// 54 Mbps from a stationary sender to a stationary receiver (static
// case) and to a walking receiver (mobile case), then plot the
// conditional probability that packet i+k is lost given packet i was
// lost. The paper's findings: the mobile conditional loss is much higher
// than static for k < 10 and decays to the unconditional baseline by
// k ≈ 50, implying a channel coherence time around 8–10 ms.
func Fig3_1(cfg Config) *Report {
	r := &Report{
		ID:    "fig3-1",
		Title: "Conditional loss probability vs lag k at 54 Mbps",
		Paper: "mobile P(loss|loss) ≫ static for k < 10; decays to baseline by k ≈ 50 (coherence ≈ 10 ms)",
	}
	// ~5000 packets/s at 54 Mbps in the paper → 200 µs spacing.
	const pktInterval = 200 * time.Microsecond
	const maxLag = 100
	total := time.Duration(cfg.scaleInt(60, 10)) * time.Second

	env := channel.Office
	// The static and mobile packet streams are independent trials.
	ss := cfg.stream("fig3-1")
	modes := []sensors.MobilityMode{sensors.Static, sensors.Walk}
	trs := parallel.Map(cfg.workers(), len(modes), func(i int) *trace.PacketTrace {
		return channel.GeneratePacketStream(env, modes[i], phy.Rate54, pktInterval, total, 1000, ss.Seed(i))
	})
	staticTr, mobileTr := trs[0], trs[1]

	staticCond := staticTr.ConditionalLoss(maxLag)
	mobileCond := mobileTr.ConditionalLoss(maxLag)
	staticBase := staticTr.LossRate()
	mobileBase := mobileTr.LossRate()

	sSt := &stats.Series{Name: "cond loss (static)"}
	sMo := &stats.Series{Name: "cond loss (mobile)"}
	for k := 1; k <= maxLag; k++ {
		sSt.Add(float64(k), staticCond[k])
		sMo.Add(float64(k), mobileCond[k])
	}
	r.Series = append(r.Series, sSt, sMo)
	r.Columns = []string{"value"}
	r.Rows = []Row{
		{Label: "uncond loss (static)", Values: []float64{staticBase}},
		{Label: "uncond loss (mobile)", Values: []float64{mobileBase}},
		{Label: "cond loss k=1 (static)", Values: []float64{staticCond[1]}},
		{Label: "cond loss k=1 (mobile)", Values: []float64{mobileCond[1]}},
		{Label: "cond loss k=50 (mobile)", Values: []float64{mobileCond[50]}},
	}

	avg := func(xs []float64, from, to int) float64 {
		sum, n := 0.0, 0
		for k := from; k <= to && k < len(xs); k++ {
			sum += xs[k]
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	mobShort := avg(mobileCond, 1, 10)
	stShort := avg(staticCond, 1, 10)
	mobLong := avg(mobileCond, 50, maxLag)

	// Use an absolute excess: at high baseline loss the ratio saturates
	// (conditional probabilities cannot exceed 1).
	r.AddCheck("mobile-short-range-dependence", mobShort > mobileBase+0.15,
		"mobile P(loss|loss) k≤10 = %.2f vs baseline %.2f", mobShort, mobileBase)
	r.AddCheck("mobile-exceeds-static-short-lag", mobShort > stShort+0.1,
		"short-lag conditional loss: mobile %.2f vs static %.2f", mobShort, stShort)
	r.AddCheck("decay-by-k50", mobLong < mobileBase*1.5+0.05,
		"mobile conditional loss at k≥50 %.2f ≈ baseline %.2f", mobLong, mobileBase)
	return r
}
