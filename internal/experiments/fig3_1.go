package experiments

import (
	"time"

	"repro/internal/channel"
	"repro/internal/phy"
	"repro/internal/sensors"
	"repro/internal/stats"
)

func init() {
	register("fig3-1", "conditional packet-loss probability vs lag, static vs mobile", Fig3_1, tags("ch3", "paper"))
}

// Fig3_1 reproduces Figure 3-1: send back-to-back 1000-byte packets at
// 54 Mbps from a stationary sender to a stationary receiver (static
// case) and to a walking receiver (mobile case), then plot the
// conditional probability that packet i+k is lost given packet i was
// lost. The paper's findings: the mobile conditional loss is much higher
// than static for k < 10 and decays to the unconditional baseline by
// k ≈ 50, implying a channel coherence time around 8–10 ms.
func Fig3_1(cfg Config) *Report {
	// ~5000 packets/s at 54 Mbps in the paper → 200 µs spacing.
	const pktInterval = 200 * time.Microsecond
	const maxLag = 100
	total := time.Duration(cfg.scaleInt(60, 10)) * time.Second

	env := channel.Office
	// The static and mobile packet streams are independent trials; each
	// generates its stream, runs the conditional-loss analysis, and
	// emits the curve plus the unconditional baseline.
	ss := cfg.stream("fig3-1")
	modes := []sensors.MobilityMode{sensors.Static, sensors.Walk}
	labels := []string{"static", "mobile"}
	cfg.trials("fig3-1", len(modes), func(i int, em *Emitter) {
		tr := channel.GeneratePacketStream(env, modes[i], phy.Rate54, pktInterval, total, 1000, ss.Seed(i))
		cond := tr.ConditionalLoss(maxLag)
		for k := 1; k <= maxLag; k++ {
			em.Point("cond/"+labels[i], float64(k), cond[k])
		}
		em.Add("base/"+labels[i], tr.LossRate())
	})
	if cfg.collecting() {
		return nil
	}

	r := &Report{
		ID:    "fig3-1",
		Title: "Conditional loss probability vs lag k at 54 Mbps",
		Paper: "mobile P(loss|loss) ≫ static for k < 10; decays to baseline by k ≈ 50 (coherence ≈ 10 ms)",
	}
	sSt := cfg.seriesCol("cond/static", "cond loss (static)")
	sMo := cfg.seriesCol("cond/mobile", "cond loss (mobile)")
	staticBase := cfg.val("base/static")
	mobileBase := cfg.val("base/mobile")
	// The series carry lags 1..maxLag in order: index k−1 is lag k.
	at := func(s *stats.Series, k int) float64 {
		if k-1 < len(s.Points) {
			return s.Points[k-1].Y
		}
		return 0
	}

	r.Series = append(r.Series, sSt, sMo)
	r.Columns = []string{"value"}
	r.Rows = []Row{
		{Label: "uncond loss (static)", Values: []float64{staticBase}},
		{Label: "uncond loss (mobile)", Values: []float64{mobileBase}},
		{Label: "cond loss k=1 (static)", Values: []float64{at(sSt, 1)}},
		{Label: "cond loss k=1 (mobile)", Values: []float64{at(sMo, 1)}},
		{Label: "cond loss k=50 (mobile)", Values: []float64{at(sMo, 50)}},
	}

	avg := func(s *stats.Series, from, to int) float64 {
		sum, n := 0.0, 0
		for k := from; k <= to; k++ {
			if k-1 >= len(s.Points) {
				break
			}
			sum += s.Points[k-1].Y
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	mobShort := avg(sMo, 1, 10)
	stShort := avg(sSt, 1, 10)
	mobLong := avg(sMo, 50, maxLag)

	// Use an absolute excess: at high baseline loss the ratio saturates
	// (conditional probabilities cannot exceed 1).
	r.AddCheck("mobile-short-range-dependence", mobShort > mobileBase+0.15,
		"mobile P(loss|loss) k≤10 = %.2f vs baseline %.2f", mobShort, mobileBase)
	r.AddCheck("mobile-exceeds-static-short-lag", mobShort > stShort+0.1,
		"short-lag conditional loss: mobile %.2f vs static %.2f", mobShort, stShort)
	r.AddCheck("decay-by-k50", mobLong < mobileBase*1.5+0.05,
		"mobile conditional loss at k≥50 %.2f ≈ baseline %.2f", mobLong, mobileBase)
	return r
}
