//go:build race

package experiments

// underRace lets the slow registry-wide tests shrink their scale when
// the race detector (≈10× slowdown) is on: the interleavings the
// detector needs happen at any scale.
const underRace = true
