package experiments

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestReportString(t *testing.T) {
	r := &Report{
		ID:      "test-1",
		Title:   "A test report",
		Paper:   "expected shape",
		Columns: []string{"value"},
		Rows:    []Row{{Label: "metric", Values: []float64{42}}},
		Notes:   []string{"a note"},
	}
	s := &stats.Series{Name: "curve"}
	s.Add(0, 1)
	s.Add(1, 2)
	r.Series = append(r.Series, s)
	r.AddCheck("passes", true, "ok %d", 1)
	r.AddCheck("fails", false, "bad %d", 2)

	out := r.String()
	for _, want := range []string{"test-1", "A test report", "expected shape",
		"metric", "42", "a note", "curve", "[PASS] passes: ok 1", "[FAIL] fails: bad 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q", want)
		}
	}
	if got := r.Failed(); len(got) != 1 || !strings.Contains(got[0], "fails") {
		t.Errorf("Failed() = %v", got)
	}
}

func TestConfigScaling(t *testing.T) {
	var zero Config
	if zero.scale() != 1 {
		t.Error("zero config should scale 1.0")
	}
	c := Config{Scale: 0.1}
	if c.scaleInt(100, 5) != 10 {
		t.Errorf("scaleInt = %d", c.scaleInt(100, 5))
	}
	if c.scaleInt(10, 5) != 5 {
		t.Error("scaleInt must respect the minimum")
	}
}

func TestRegistryOrdering(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Errorf("registry unsorted at %d: %s >= %s", i, all[i-1].ID, all[i].ID)
		}
	}
	for _, e := range all {
		if e.Desc == "" {
			t.Errorf("experiment %s has no description", e.ID)
		}
	}
}
