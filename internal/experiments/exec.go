package experiments

import (
	"fmt"
	"sort"

	"repro/internal/parallel"
	"repro/internal/stats"
)

// This file is the shard-aware trial engine every experiment routes
// through. An experiment is written in two phases:
//
//   - Trial phase: one or more cfg.trials(label, n, fn) loops. fn(i, em)
//     computes trial i (seeding itself from the experiment's SeedStream
//     by the global index i) and emits its contributions to named
//     collectors — scalar samples, histogram counts, series points.
//   - Finish phase: builds the Report reading *only* the collectors
//     (cfg.acc / cfg.hist / cfg.seriesCol) and deterministic
//     inputs. Between the phases every experiment bails out with
//     `if cfg.collecting() { return nil }`.
//
// The split is what lets one experiment run three ways with
// bit-identical output:
//
//   - in-process (mode run): trials fan out across the worker pool and
//     their emissions are absorbed in trial-index order; finish runs on
//     the same collectors.
//   - shard worker (mode collect): only the shard's contiguous slice of
//     each trial range runs; per-trial emissions are recorded, not
//     absorbed, and the finish phase is skipped.
//   - coordinator (mode replay): the recorded per-trial emissions of
//     all shards are absorbed in global trial-index order — the exact
//     absorb sequence of the in-process run, float-op for float-op —
//     and the trial loops become no-ops feeding the same finish phase.
//
// Partials keep per-trial granularity (not per-shard aggregates)
// because some merges are order-sensitive float reductions (for
// example Histogram.sum): absorbing trial-by-trial reproduces the
// in-process grouping of additions exactly, where pre-merged shard
// aggregates would regroup them and could flip low-order bits.

// shardMode selects how the trial engine executes.
type shardMode int

const (
	// modeRun executes every trial and the finish phase in-process.
	modeRun shardMode = iota
	// modeCollect executes one shard's slice of every trial range and
	// records per-trial emissions; the finish phase is skipped.
	modeCollect
	// modeReplay skips every trial loop (collectors were pre-filled by
	// MergeShards) and runs only the finish phase.
	modeReplay
)

// shardExec carries the engine state of one experiment run. It is
// created per run (by the register wrapper or by RunShard/MergeShards),
// and all mutation happens on the caller's goroutine — per-trial
// emitters are the only state workers touch, and each trial owns its
// emitter exclusively.
type shardExec struct {
	mode  shardMode
	shard parallel.Shard
	cols  colSet
	// emit receives each completed loop record in execution order
	// (modeCollect): a cluster worker sends it to the coordinator while
	// later loops still run, RunShard's own sink collects into a
	// Partial. Records are handed off, never retained here, so a
	// streaming worker holds one loop at a time. An emit error aborts
	// the run via an emitAbort panic that RunShardStream converts back
	// into an error.
	emit func(*LoopPartial) error
	// loops maps loop label → declared trial count, for validating
	// that replayed partials match the experiment's structure and that
	// no label is used twice.
	loops map[string]int
	// plans maps loop label → declared sub-trial plan (zero for plain
	// loops), so a replay can verify the partials were produced by the
	// same cell×unit decomposition the experiment declares.
	plans map[string]parallel.SubPlan
	// replayed marks the partial loops the experiment consumed in
	// modeReplay; MergeShards turns leftovers into an error (a partial
	// with loops the experiment never runs is from a different build).
	replayed map[string]bool
	// owner maps collector name → loop label, so a collector written
	// by two different loops (whose absorb order would then be
	// mode-dependent) fails loudly instead of silently diverging.
	owner map[string]string
}

func newExec(mode shardMode) *shardExec {
	return &shardExec{
		mode:     mode,
		cols:     newColSet(),
		loops:    map[string]int{},
		plans:    map[string]parallel.SubPlan{},
		owner:    map[string]string{},
		replayed: map[string]bool{},
	}
}

// claim registers a loop label and the collector names its trials
// emitted, panicking on structural misuse (reused label or collector).
func (sh *shardExec) claim(label string, n int, ems []*Emitter) {
	if _, dup := sh.loops[label]; dup {
		panic(fmt.Sprintf("experiments: trial loop label %q used twice", label))
	}
	sh.loops[label] = n
	for _, em := range ems {
		for _, name := range em.names() {
			if prev, ok := sh.owner[name]; ok && prev != label {
				panic(fmt.Sprintf("experiments: collector %q written by loops %q and %q", name, prev, label))
			}
			sh.owner[name] = label
		}
	}
}

// Emitter collects one trial's contributions to the experiment's named
// collectors. Every trial owns its emitter exclusively; the engine
// absorbs emitters in trial-index order, which is what keeps reports
// independent of scheduling. Within a trial, per-name emission order is
// preserved.
type Emitter struct {
	accs   map[string][]float64
	hists  map[string]*stats.Histogram
	series map[string][]stats.Point
}

func newEmitter() *Emitter {
	return &Emitter{}
}

// Add appends scalar samples to the named accumulator collector.
func (e *Emitter) Add(name string, xs ...float64) {
	if e.accs == nil {
		e.accs = map[string][]float64{}
	}
	e.accs[name] = append(e.accs[name], xs...)
}

// Hist counts samples into the named histogram collector. The width
// must be identical across every trial that touches the collector.
func (e *Emitter) Hist(name string, width float64, xs ...float64) {
	if e.hists == nil {
		e.hists = map[string]*stats.Histogram{}
	}
	h := e.hists[name]
	if h == nil {
		h = stats.NewHistogram(width)
		e.hists[name] = h
	}
	for _, x := range xs {
		h.Add(x)
	}
}

// Point appends one point to the named series collector. Points
// accumulate in emission order within the trial and trial order across
// trials; any sorting belongs in the finish phase.
func (e *Emitter) Point(name string, x, y float64) {
	if e.series == nil {
		e.series = map[string][]stats.Point{}
	}
	e.series[name] = append(e.series[name], stats.Point{X: x, Y: y})
}

// names returns every collector name the emitter touched (sorted, for
// deterministic wire output).
func (e *Emitter) names() []string {
	var out []string
	for n := range e.accs {
		out = append(out, n)
	}
	for n := range e.hists {
		out = append(out, n)
	}
	for n := range e.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// empty reports whether the trial emitted nothing.
func (e *Emitter) empty() bool {
	return len(e.accs) == 0 && len(e.hists) == 0 && len(e.series) == 0
}

// colSet is the mutable collector state a finish phase reads.
type colSet struct {
	accs   map[string]*stats.Accumulator
	hists  map[string]*stats.Histogram
	series map[string]*stats.Series
}

func newColSet() colSet {
	return colSet{
		accs:   map[string]*stats.Accumulator{},
		hists:  map[string]*stats.Histogram{},
		series: map[string]*stats.Series{},
	}
}

// absorb merges one trial's emissions. Collectors with distinct names
// are independent, so the map iteration order here cannot influence
// any collector's final state; within a name, slices preserve emission
// order and the histogram merge performs the same additions in the
// same sequence in every mode.
func (c *colSet) absorb(e *Emitter) {
	for name, xs := range e.accs {
		acc := c.accs[name]
		if acc == nil {
			acc = &stats.Accumulator{}
			c.accs[name] = acc
		}
		acc.Add(xs...)
	}
	for name, h := range e.hists {
		dst := c.hists[name]
		if dst == nil {
			dst = stats.NewHistogram(h.Width)
			c.hists[name] = dst
		}
		dst.Merge(h)
	}
	for name, pts := range e.series {
		s := c.series[name]
		if s == nil {
			s = &stats.Series{Name: name}
			c.series[name] = s
		}
		s.Points = append(s.Points, pts...)
	}
}

// trials runs fn(i, em) for the trials of [0, n) this execution mode
// assigns to the process, fanning them across cfg.workers() goroutines.
// label names the loop on the shard wire format and must be unique
// within the experiment; n must be the full trial-range size in every
// mode (a shard worker restricts the range itself). fn must derive all
// randomness from the global trial index i and must not call
// cfg.trials recursively.
func (c Config) trials(label string, n int, fn func(i int, em *Emitter)) {
	c.runLoop(label, n, parallel.SubPlan{}, fn)
}

// subTrials is the trials variant for loops whose trial range is really
// a Cells×Units sub-trial grid (see parallel.SubPlan): fn(i, em) runs
// work unit plan.Cell(i). The plan travels on the shard wire format so
// a replaying coordinator can verify the partials were produced by the
// same decomposition, and so operators can see how a heavy trial was
// split. Execution is otherwise identical to trials — the flattened
// range shards, seeds, and merges like any other.
func (c Config) subTrials(label string, plan parallel.SubPlan, fn func(i int, em *Emitter)) {
	if !plan.Valid() {
		panic(fmt.Sprintf("experiments: trial loop %q declares invalid sub-trial plan %v", label, plan))
	}
	c.runLoop(label, plan.Trials(), plan, fn)
}

func (c Config) runLoop(label string, n int, plan parallel.SubPlan, fn func(i int, em *Emitter)) {
	sh := c.sh
	if sh == nil {
		panic("experiments: Config.trials outside a registered runner")
	}
	switch sh.mode {
	case modeReplay:
		// Mismatches here mean the partials came from a different build
		// of the experiment; the panics are converted to errors by
		// MergeShards' recover.
		want, ok := sh.loops[label]
		if !ok {
			panic(replayMismatch(fmt.Sprintf("replay has no partials for trial loop %q", label)))
		}
		if want != n {
			panic(replayMismatch(fmt.Sprintf("trial loop %q has %d trials, partials carry %d", label, n, want)))
		}
		if got := sh.plans[label]; got != plan {
			panic(replayMismatch(fmt.Sprintf("trial loop %q declares sub-trial plan %v, partials carry %v", label, plan, got)))
		}
		sh.replayed[label] = true
		return
	case modeCollect:
		lo, hi := sh.shard.Range(n)
		ems := parallel.Map(c.workers(), hi-lo, func(j int) *Emitter {
			em := newEmitter()
			fn(lo+j, em)
			return em
		})
		sh.claim(label, n, ems)
		sh.plans[label] = plan
		if err := sh.emit(encodeLoop(label, n, lo, plan, ems)); err != nil {
			panic(emitAbort{err})
		}
	default:
		ems := parallel.Map(c.workers(), n, func(i int) *Emitter {
			em := newEmitter()
			fn(i, em)
			return em
		})
		sh.claim(label, n, ems)
		sh.plans[label] = plan
		for _, em := range ems {
			sh.cols.absorb(em)
		}
	}
}

// execRange returns the slice [lo, hi) of an n-trial range this
// execution mode actually runs: the whole range in-process, the shard's
// contiguous slice on a shard worker, nothing on a replaying
// coordinator. Runners use it to size shared per-cell resources (for
// example memoized traces) to the work this process will perform.
func (c Config) execRange(n int) (lo, hi int) {
	if c.sh != nil {
		switch c.sh.mode {
		case modeCollect:
			return c.sh.shard.Range(n)
		case modeReplay:
			return 0, 0
		}
	}
	return 0, n
}

// collecting reports whether this run is a shard worker, in which case
// the experiment must return nil instead of building a report: the
// collectors hold only this shard's trials and the finish phase would
// compute nonsense from them.
func (c Config) collecting() bool {
	return c.sh != nil && c.sh.mode == modeCollect
}

// acc returns the named accumulator collector, or an empty one if no
// trial emitted to it, so finish phases stay total.
func (c Config) acc(name string) *stats.Accumulator {
	if a := c.sh.cols.accs[name]; a != nil {
		return a
	}
	return &stats.Accumulator{}
}

// val returns the single value of a one-sample collector (0 if absent),
// the common shape for deterministic single-trial emissions.
func (c Config) val(name string) float64 {
	a := c.sh.cols.accs[name]
	if a == nil || a.N() == 0 {
		return 0
	}
	return a.Values()[0]
}

// hist returns the named histogram collector, or an empty unit-width
// histogram if no trial emitted to it.
func (c Config) hist(name string) *stats.Histogram {
	if h := c.sh.cols.hists[name]; h != nil {
		return h
	}
	return stats.NewHistogram(1)
}

// seriesCol returns the named series collector (points in trial order,
// then emission order), renamed for display. The returned series is
// the collector itself; finish phases may sort or rescale it in place.
func (c Config) seriesCol(name, displayName string) *stats.Series {
	s := c.sh.cols.series[name]
	if s == nil {
		s = &stats.Series{}
	}
	s.Name = displayName
	return s
}
