package experiments

import "testing"

// TestAllExperimentsShape runs every registered experiment at reduced
// scale and asserts the paper-shape checks pass.
func TestAllExperimentsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	scale := 0.3
	if underRace {
		scale = 0.1
	}
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			rep := exp.Run(Config{Scale: scale, Seed: 42})
			for _, c := range rep.Checks {
				if !c.OK {
					t.Errorf("check %s failed: %s", c.Name, c.Detail)
				} else {
					t.Logf("check %s: %s", c.Name, c.Detail)
				}
			}
		})
	}
}
