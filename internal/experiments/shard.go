package experiments

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/parallel"
	"repro/internal/stats"
)

// This file defines the cross-process wire format for sharded
// experiment execution and the two entry points around it:
//
//	RunShard    — worker side: run one shard's slice of every trial
//	              range and return the partial, unmerged per-trial
//	              collector state.
//	MergeShards — coordinator side: validate K partials, absorb their
//	              trials in global trial-index order, and run the
//	              experiment's finish phase over the merged collectors.
//
// The envelope is JSON for inspectability (cmd/hintshard writes one
// Partial per worker); the per-collector payloads inside it are the
// bit-exact binary codecs from internal/stats, base64-wrapped by
// encoding/json. A report produced by MergeShards is byte-identical to
// the single-process report for any shard count — the golden test in
// determinism_test.go enforces this for every registered experiment.

// PartialVersion tags the shard wire format; a coordinator refuses
// partials of any other version.
const PartialVersion = 1

// Partial is one shard's contribution to an experiment: the emissions
// of every trial the shard executed, keyed by trial loop, exactly as
// recorded — nothing is pre-merged.
type Partial struct {
	Version int `json:"version"`
	// Job tags the campaign job the shard belongs to (0 outside a
	// campaign); a coordinator refuses to merge partials whose job tags
	// disagree, so shards of two interleaved experiments can never be
	// mixed into one report.
	Job        int    `json:"job,omitempty"`
	Experiment string `json:"experiment"`
	// Shard / Shards identify the slice: shard Shard of Shards.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Seed and Scale echo the worker's Config; a coordinator refuses
	// to merge partials whose configurations disagree.
	Seed  int64   `json:"seed"`
	Scale float64 `json:"scale"`
	// Loops holds one record per cfg.trials loop, in execution order.
	Loops []*LoopPartial `json:"loops"`
}

// LoopPartial is one trial loop's shard slice.
type LoopPartial struct {
	// Label names the loop (unique within the experiment).
	Label string `json:"label"`
	// N is the full trial-range size; every shard of a run must agree.
	N int `json:"n"`
	// Lo is the first global trial index of this shard's slice; the
	// slice is [Lo, Lo+len(Trials)).
	Lo int `json:"lo"`
	// Cells and Units carry the loop's declared sub-trial plan when the
	// trial range is really a Cells×Units grid of sub-trial work units
	// (see parallel.SubPlan); both are zero for plain loops. When set,
	// Cells×Units must equal N, and every shard of a run must agree —
	// a replaying coordinator additionally checks the plan against the
	// decomposition the experiment declares.
	Cells int `json:"cells,omitempty"`
	Units int `json:"units,omitempty"`
	// Trials holds the per-trial emissions in ascending global trial
	// index order.
	Trials []TrialPartial `json:"trials"`
}

// plan returns the loop's sub-trial plan (zero for plain loops).
func (lp *LoopPartial) plan() parallel.SubPlan {
	return parallel.SubPlan{Cells: lp.Cells, Units: lp.Units}
}

// TrialPartial is the serialized emissions of a single trial. Map
// values are internal/stats binary codec payloads (base64 in JSON).
// Trials that emitted nothing serialize as empty objects.
type TrialPartial struct {
	Accs   map[string][]byte `json:"accs,omitempty"`
	Hists  map[string][]byte `json:"hists,omitempty"`
	Series map[string][]byte `json:"series,omitempty"`
}

// encodeLoop serializes one loop's per-trial emitters.
func encodeLoop(label string, n, lo int, plan parallel.SubPlan, ems []*Emitter) *LoopPartial {
	out := &LoopPartial{Label: label, N: n, Lo: lo, Cells: plan.Cells, Units: plan.Units, Trials: make([]TrialPartial, len(ems))}
	for i, em := range ems {
		out.Trials[i] = encodeTrial(em)
	}
	return out
}

func encodeTrial(em *Emitter) TrialPartial {
	var tp TrialPartial
	if len(em.accs) > 0 {
		tp.Accs = make(map[string][]byte, len(em.accs))
		for name, xs := range em.accs {
			var a stats.Accumulator
			a.Add(xs...)
			tp.Accs[name] = mustMarshal(a.MarshalBinary())
		}
	}
	if len(em.hists) > 0 {
		tp.Hists = make(map[string][]byte, len(em.hists))
		for name, h := range em.hists {
			tp.Hists[name] = mustMarshal(h.MarshalBinary())
		}
	}
	if len(em.series) > 0 {
		tp.Series = make(map[string][]byte, len(em.series))
		for name, pts := range em.series {
			s := &stats.Series{Name: name, Points: pts}
			tp.Series[name] = mustMarshal(s.MarshalBinary())
		}
	}
	return tp
}

// mustMarshal panics on encode errors: the binary codecs only fail on
// structurally impossible inputs (a series name over 4 GiB).
func mustMarshal(b []byte, err error) []byte {
	if err != nil {
		panic(fmt.Sprintf("experiments: encoding shard partial: %v", err))
	}
	return b
}

// decodeTrial rebuilds a trial's emitter from the wire form.
func decodeTrial(tp TrialPartial) (*Emitter, error) {
	em := newEmitter()
	for name, blob := range tp.Accs {
		var a stats.Accumulator
		if err := a.UnmarshalBinary(blob); err != nil {
			return nil, fmt.Errorf("accumulator %q: %w", name, err)
		}
		em.Add(name, a.Values()...)
	}
	for name, blob := range tp.Hists {
		var h stats.Histogram
		if err := h.UnmarshalBinary(blob); err != nil {
			return nil, fmt.Errorf("histogram %q: %w", name, err)
		}
		if em.hists == nil {
			em.hists = map[string]*stats.Histogram{}
		}
		em.hists[name] = &h
	}
	for name, blob := range tp.Series {
		var s stats.Series
		if err := s.UnmarshalBinary(blob); err != nil {
			return nil, fmt.Errorf("series %q: %w", name, err)
		}
		for _, p := range s.Points {
			em.Point(name, p.X, p.Y)
		}
	}
	return em, nil
}

// Encode writes the partial as JSON.
func (p *Partial) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(p)
}

// DecodePartial reads one JSON partial and checks its envelope: known
// version, well-formed shard coordinates, well-formed loop slices.
// Collector payloads are validated later, when MergeShards decodes
// them.
func DecodePartial(r io.Reader) (*Partial, error) {
	var p Partial
	dec := json.NewDecoder(r)
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("experiments: decoding partial: %w", err)
	}
	if p.Version != PartialVersion {
		return nil, fmt.Errorf("experiments: partial version %d, want %d", p.Version, PartialVersion)
	}
	sh := parallel.Shard{Index: p.Shard, Count: p.Shards}
	if !sh.Valid() {
		return nil, fmt.Errorf("experiments: partial has invalid shard %d/%d", p.Shard, p.Shards)
	}
	if p.Experiment == "" {
		return nil, fmt.Errorf("experiments: partial names no experiment")
	}
	if p.Job < 0 {
		return nil, fmt.Errorf("experiments: partial carries negative job tag %d", p.Job)
	}
	for _, loop := range p.Loops {
		if loop == nil {
			return nil, fmt.Errorf("experiments: null loop record")
		}
		lo, hi := sh.Range(loop.N)
		if loop.Lo != lo || len(loop.Trials) != hi-lo {
			return nil, fmt.Errorf("experiments: loop %q carries trials [%d,%d), shard %v of %d trials owns [%d,%d)",
				loop.Label, loop.Lo, loop.Lo+len(loop.Trials), sh, loop.N, lo, hi)
		}
		if (loop.Cells != 0) != (loop.Units != 0) {
			return nil, fmt.Errorf("experiments: loop %q carries half a sub-trial plan (%d cells, %d units)",
				loop.Label, loop.Cells, loop.Units)
		}
		if loop.Cells != 0 {
			// Division instead of multiplication so hostile counts cannot
			// overflow their way past the check.
			if loop.Cells < 0 || loop.Units < 0 || loop.N/loop.Units != loop.Cells || loop.N%loop.Units != 0 {
				return nil, fmt.Errorf("experiments: loop %q declares sub-trial plan %d×%d over %d trials",
					loop.Label, loop.Cells, loop.Units, loop.N)
			}
		}
	}
	return &p, nil
}

// CanonicalLoops serializes a shard result (the loop records streamed
// for one shard, in execution order) into a canonical byte string: two
// results encode to the same bytes iff they carry the same loops in the
// same order with the same labels, ranges, and bit-identical collector
// payloads. The campaign verification mode compares a re-executed shard
// against the first result with it — the determinism contract makes any
// difference a hard fault, so the encoding must be injective (a
// tampering worker must not be able to craft a different result with
// the same bytes) and order-stable. Layout, all fields
// stats.AppendFrame-framed: the loop count; then per loop its label and
// a fixed-width header carrying N, Lo, the trial count, and the
// sub-trial plan (zero for plain loops); then per
// trial a kind+name frame and payload frame per collector in sorted
// name order, closed by an empty frame. The explicit counts pin every
// frame's role — a decoder always knows whether the next frame is a
// label, a header, a collector tag, a payload, or a terminator — so no
// concatenation of one result can alias another.
func CanonicalLoops(loops []*LoopPartial) ([]byte, error) {
	var out []byte
	var ferr error
	app := func(payload []byte) {
		if ferr == nil {
			out, ferr = stats.AppendFrame(out, payload)
		}
	}
	appNamed := func(kind byte, name string, payload []byte) {
		tag := make([]byte, 0, 1+len(name))
		app(append(append(tag, kind), name...))
		app(payload)
	}
	var count [8]byte
	binary.LittleEndian.PutUint64(count[:], uint64(len(loops)))
	app(count[:])
	for _, loop := range loops {
		app([]byte(loop.Label))
		var hdr [40]byte
		binary.LittleEndian.PutUint64(hdr[0:8], uint64(loop.N))
		binary.LittleEndian.PutUint64(hdr[8:16], uint64(loop.Lo))
		binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(loop.Trials)))
		binary.LittleEndian.PutUint64(hdr[24:32], uint64(loop.Cells))
		binary.LittleEndian.PutUint64(hdr[32:40], uint64(loop.Units))
		app(hdr[:])
		for _, tp := range loop.Trials {
			for _, name := range sortedKeys(tp.Accs) {
				appNamed('a', name, tp.Accs[name])
			}
			for _, name := range sortedKeys(tp.Hists) {
				appNamed('h', name, tp.Hists[name])
			}
			for _, name := range sortedKeys(tp.Series) {
				appNamed('s', name, tp.Series[name])
			}
			app(nil) // trial terminator
		}
	}
	return out, ferr
}

func sortedKeys(m map[string][]byte) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RunShard executes one shard of the experiment's trial space: every
// cfg.trials loop runs only the shard's contiguous slice (trial seeds
// still derive from the global trial index, so each trial computes
// exactly what it would in a single-process run) and the finish phase
// is skipped. The returned Partial carries the unmerged per-trial
// emissions for MergeShards. Shard {0, 1} collects the whole trial
// space.
func RunShard(id string, cfg Config, shard parallel.Shard) (*Partial, error) {
	var loops []*LoopPartial
	err := RunShardStream(id, cfg, shard, func(lp *LoopPartial) error {
		loops = append(loops, lp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Partial{
		Version:    PartialVersion,
		Experiment: id,
		Shard:      shard.Index,
		Shards:     shard.Count,
		Seed:       cfg.Seed,
		Scale:      cfg.Scale,
		Loops:      loops,
	}, nil
}

// emitAbort carries a streaming-sink error out of the trial engine; the
// experiment run is abandoned at the loop boundary where the sink broke
// (there is no point computing trials nobody can receive).
type emitAbort struct{ err error }

// RunShardStream is the streaming form of RunShard: emit receives each
// trial loop's partial record as soon as the loop finishes, while later
// loops are still running — a cluster worker forwards them to its
// coordinator so the merge absorbs results incrementally, holding one
// loop in memory at a time instead of the whole shard. The engine hands
// records off and does not retain them; RunShard is this function with
// a collecting sink. If emit returns an error, the run stops at that
// loop boundary and the error is returned.
func RunShardStream(id string, cfg Config, shard parallel.Shard, emit func(*LoopPartial) error) (err error) {
	if emit == nil {
		return fmt.Errorf("experiments: RunShardStream needs a sink")
	}
	r, ok := ByID(id)
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q", id)
	}
	if !shard.Valid() {
		return fmt.Errorf("experiments: invalid shard %v", shard)
	}
	sh := newExec(modeCollect)
	sh.shard = shard
	sh.emit = emit
	cfg.sh = sh
	defer func() {
		if v := recover(); v != nil {
			ab, ok := v.(emitAbort)
			if !ok {
				panic(v)
			}
			err = fmt.Errorf("experiments: streaming shard %v of %s: %w", shard, id, ab.err)
		}
	}()
	r.Run(cfg)
	return nil
}

// MergeShards merges a complete set of shard partials and builds the
// finished report. The partials may arrive in any order; they must
// form exactly the shard set {0, …, K−1} of one (experiment, seed,
// scale) run and agree on every trial loop. Trials are absorbed in
// global trial-index order — the same absorb sequence as a
// single-process run — so the report is byte-identical to it. workers
// bounds the finish phase's in-process parallelism (most finish phases
// are serial; 0 means one per CPU).
func MergeShards(parts []*Partial, workers int) (*Report, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("experiments: no partials to merge")
	}
	ordered := append([]*Partial(nil), parts...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Shard < ordered[j].Shard })
	first := ordered[0]
	k := len(ordered)
	for i, p := range ordered {
		if p.Version != PartialVersion {
			return nil, fmt.Errorf("experiments: partial version %d, want %d", p.Version, PartialVersion)
		}
		if p.Shards != k || p.Shard != i {
			return nil, fmt.Errorf("experiments: partials do not form shards 0..%d/%d (got %d/%d)",
				k-1, k, p.Shard, p.Shards)
		}
		if p.Experiment != first.Experiment || p.Seed != first.Seed || p.Scale != first.Scale {
			return nil, fmt.Errorf("experiments: partial %d/%d is from run (%s seed=%d scale=%g), first is (%s seed=%d scale=%g)",
				p.Shard, p.Shards, p.Experiment, p.Seed, p.Scale, first.Experiment, first.Seed, first.Scale)
		}
		if p.Job != first.Job {
			return nil, fmt.Errorf("experiments: partial %d/%d is tagged job %d, first is job %d",
				p.Shard, p.Shards, p.Job, first.Job)
		}
		if len(p.Loops) != len(first.Loops) {
			return nil, fmt.Errorf("experiments: partial %d/%d records %d trial loops, first records %d",
				p.Shard, p.Shards, len(p.Loops), len(first.Loops))
		}
	}
	r, ok := ByID(first.Experiment)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", first.Experiment)
	}

	sh := newExec(modeReplay)
	for li, ref := range first.Loops {
		want := parallel.ShardPlan{Count: k}
		covered := 0
		for _, p := range ordered {
			loop := p.Loops[li]
			if loop.Label != ref.Label || loop.N != ref.N {
				return nil, fmt.Errorf("experiments: partial %d/%d loop %d is %q (%d trials), first is %q (%d trials)",
					p.Shard, p.Shards, li, loop.Label, loop.N, ref.Label, ref.N)
			}
			if loop.plan() != ref.plan() {
				return nil, fmt.Errorf("experiments: partial %d/%d loop %q declares sub-trial plan %v, first declares %v",
					p.Shard, p.Shards, loop.Label, loop.plan(), ref.plan())
			}
			lo, hi := want.Range(loop.N, p.Shard)
			if loop.Lo != lo || len(loop.Trials) != hi-lo {
				return nil, fmt.Errorf("experiments: loop %q shard %d/%d carries [%d,%d), plan assigns [%d,%d)",
					loop.Label, p.Shard, p.Shards, loop.Lo, loop.Lo+len(loop.Trials), lo, hi)
			}
			// Shards sort ascending and ranges are contiguous, so this
			// absorbs trials in exactly global trial-index order.
			for ti := range loop.Trials {
				em, err := decodeTrial(loop.Trials[ti])
				if err != nil {
					return nil, fmt.Errorf("experiments: loop %q trial %d: %w", loop.Label, lo+ti, err)
				}
				for _, name := range em.names() {
					if prev, ok := sh.owner[name]; ok && prev != ref.Label {
						return nil, fmt.Errorf("experiments: collector %q written by loops %q and %q", name, prev, ref.Label)
					}
					sh.owner[name] = ref.Label
				}
				sh.cols.absorb(em)
				covered++
			}
		}
		if covered != ref.N {
			return nil, fmt.Errorf("experiments: loop %q merged %d of %d trials", ref.Label, covered, ref.N)
		}
		sh.loops[ref.Label] = ref.N
		sh.plans[ref.Label] = ref.plan()
	}

	cfg := Config{Scale: first.Scale, Seed: first.Seed, Workers: workers, sh: sh}
	rep, err := replayRun(r, cfg)
	if err != nil {
		return nil, err
	}
	if rep == nil {
		return nil, fmt.Errorf("experiments: %s produced no report on replay", first.Experiment)
	}
	for label := range sh.loops {
		if !sh.replayed[label] {
			return nil, fmt.Errorf("experiments: partials carry trial loop %q that %s never runs (stale partials from a different build?)",
				label, first.Experiment)
		}
	}
	return rep, nil
}

// replayMismatch tags the replay-engine panics that mean "these
// partials describe a different build of the experiment", so replayRun
// can convert exactly those into errors while letting genuine bugs
// crash loudly.
type replayMismatch string

// replayRun executes the experiment's finish phase over merged
// collectors, converting structural-mismatch panics into errors: a
// coordinator fed stale partial files must fail cleanly, not crash.
func replayRun(r Runner, cfg Config) (rep *Report, err error) {
	defer func() {
		if v := recover(); v != nil {
			if m, ok := v.(replayMismatch); ok {
				err = fmt.Errorf("experiments: partials do not match %s's trial structure: %s (stale partials from a different build?)",
					r.ID, string(m))
				return
			}
			panic(v)
		}
	}()
	return r.Run(cfg), nil
}
