package sensorhints

import (
	"time"

	"repro/internal/channel"
	"repro/internal/experiments"
	"repro/internal/phy"
	"repro/internal/probing"
	"repro/internal/rate"
	"repro/internal/ratesim"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vehicular"
)

// PHY layer.
type (
	// Rate is one of the eight 802.11a OFDM bit rates.
	Rate = phy.Rate
)

// The 802.11a OFDM rates.
const (
	Rate6  = phy.Rate6
	Rate9  = phy.Rate9
	Rate12 = phy.Rate12
	Rate18 = phy.Rate18
	Rate24 = phy.Rate24
	Rate36 = phy.Rate36
	Rate48 = phy.Rate48
	Rate54 = phy.Rate54
)

// Channel simulation and traces.
type (
	// Environment parameterises a simulated wireless channel.
	Environment = channel.Environment
	// ChannelConfig controls one trace generation run.
	ChannelConfig = channel.Config
	// FateTrace is a per-slot, per-rate packet-fate trace.
	FateTrace = trace.FateTrace
)

// The paper's evaluation environments.
var (
	Office        = channel.Office
	Hallway       = channel.Hallway
	Outdoor       = channel.Outdoor
	VehicularRoad = channel.Vehicular
)

// GenerateTrace produces a channel fate trace.
func GenerateTrace(cfg ChannelConfig) *FateTrace { return channel.Generate(cfg) }

// Rate adaptation (Chapter 3).
type (
	// RateAdapter is a bit-rate adaptation protocol.
	RateAdapter = rate.Adapter
	// HintAwareRate switches RapidSample/SampleRate on movement hints.
	HintAwareRate = rate.HintAware
	// RapidSample is the paper's mobile-optimised protocol (Fig 3-2).
	RapidSample = rate.RapidSample
	// SampleRate is Bicket's static-optimised baseline.
	SampleRate = rate.SampleRate
	// SimConfig parameterises a trace-driven MAC run.
	SimConfig = ratesim.Config
	// SimResult summarises a MAC run.
	SimResult = ratesim.Result
)

// Workloads for the MAC harness.
const (
	UDP = ratesim.UDP
	TCP = ratesim.TCP
)

// NewRapidSample returns the paper's RapidSample protocol.
func NewRapidSample() *RapidSample { return rate.NewRapidSample() }

// NewSampleRate returns a SampleRate instance.
func NewSampleRate(seed int64) *SampleRate { return rate.NewSampleRate(seed) }

// NewRRAA returns an RRAA instance.
func NewRRAA() RateAdapter { return rate.NewRRAA() }

// NewRBAR returns an RBAR instance.
func NewRBAR() RateAdapter { return rate.NewRBAR() }

// NewCHARM returns a CHARM instance.
func NewCHARM() RateAdapter { return rate.NewCHARM() }

// NewHintAwareRate returns the hint-aware switcher of §3.2.
func NewHintAwareRate(seed int64) *HintAwareRate { return rate.NewHintAware(seed) }

// RunRateSim replays a trace against an adapter.
func RunRateSim(cfg SimConfig) SimResult { return ratesim.Run(cfg) }

// Topology maintenance (Chapter 4).
type (
	// DeliveryEstimator is the sliding-window delivery-probability
	// estimator.
	DeliveryEstimator = probing.Estimator
	// ProbeScheduler decides when to probe.
	ProbeScheduler = probing.Scheduler
	// FixedProbing probes at a constant rate.
	FixedProbing = probing.FixedScheduler
	// HintProbing is the §4.2 hint-adaptive scheduler.
	HintProbing = probing.HintScheduler
)

// RunProbing drives a probe scheduler over a trace.
func RunProbing(tr *FateTrace, sched ProbeScheduler, windowProbes int, seed int64) probing.RunResult {
	return probing.RunScheduler(tr, sched, windowProbes, seed)
}

// Vehicular networking (§5.1).
type (
	// VehicleSim is the road-constrained mobility simulation.
	VehicleSim = vehicular.Simulation
	// VehicleMobilityConfig tunes it.
	VehicleMobilityConfig = vehicular.MobilityConfig
)

// CTE is the connection time estimate metric: the inverse heading
// difference of a link.
func CTE(headingDiffDeg float64) float64 { return vehicular.CTE(headingDiffDeg) }

// NewVehicleSim returns a fleet simulation.
func NewVehicleSim(cfg VehicleMobilityConfig) *VehicleSim { return vehicular.NewSimulation(cfg) }

// DefaultVehicleMobility returns the Table 5.1 configuration.
func DefaultVehicleMobility(seed int64) VehicleMobilityConfig {
	return vehicular.DefaultMobilityConfig(seed)
}

// The event-driven simulation core: a discrete-event engine with two
// interchangeable backends — a binary heap and an indexed timer wheel —
// that fire identical event sequences.
type (
	// EventEngine orders and fires scheduled events.
	EventEngine = sim.Engine
	// EventHandle identifies a scheduled event for Cancel/Reschedule.
	EventHandle = sim.Event
)

// NewEventEngine returns a heap-backed event engine.
func NewEventEngine() *EventEngine { return sim.New() }

// NewTimerWheel returns a timer-wheel event engine: O(1) scheduling
// inside the slotDur×nslots horizon, heap overflow beyond it, firing
// order identical to NewEventEngine.
func NewTimerWheel(slotDur time.Duration, nslots int) *EventEngine {
	return sim.NewWheel(slotDur, nslots)
}

// The city-scale Scenario API: declare AP grids, client herds, mobility
// profiles and traffic mixes; run them on the event engine or the
// slot-driven oracle.
type (
	// Scenario is a declarative city: grid, radio, herds, duration.
	Scenario = scenario.Scenario
	// ScenarioArea is the toroidal simulation area in metres.
	ScenarioArea = scenario.Area
	// APGrid places a Side×Side grid of access points.
	APGrid = scenario.APGrid
	// ScenarioRadio is the log-distance radio model.
	ScenarioRadio = scenario.Radio
	// MobilityProfile describes how a herd moves.
	MobilityProfile = scenario.MobilityProfile
	// TrafficClass is one periodic packet flow.
	TrafficClass = scenario.TrafficClass
	// TrafficMix is a herd's set of traffic classes.
	TrafficMix = scenario.TrafficMix
	// Herd is a group of clients sharing mobility and traffic.
	Herd = scenario.Herd
	// ScenarioMetrics is the integer outcome counters of a run.
	ScenarioMetrics = scenario.Metrics
	// ScenarioResult is metrics plus engine bookkeeping.
	ScenarioResult = scenario.Result
)

// DefaultScenarioRadio returns the calibrated radio model.
func DefaultScenarioRadio() ScenarioRadio { return scenario.DefaultRadio() }

// RunScenario executes a scenario on the event-driven engine (timer
// wheel + spatial AP index); cost follows packet events.
func RunScenario(sc Scenario) ScenarioResult { return scenario.Run(sc) }

// RunScenarioSlotted executes a scenario on the slot-driven oracle;
// contention-free results are byte-identical to RunScenario.
func RunScenarioSlotted(sc Scenario) ScenarioResult { return scenario.RunSlotted(sc) }

// RunScenarioChunk runs clients [lo, hi) of a contention-free scenario;
// merging a disjoint cover reproduces RunScenario exactly.
func RunScenarioChunk(sc Scenario, lo, hi int) ScenarioResult {
	return scenario.RunChunk(sc, lo, hi)
}

// DefaultCityScenario returns the city-grid experiment's city at the
// given scale: 1.0 is 1024 APs and 100,000 clients for 40 s.
func DefaultCityScenario(scale float64) Scenario {
	return experiments.CityScenario(experiments.Config{Scale: scale, Seed: 42})
}

// Experiments: the per-table/figure reproduction harness.
type (
	// Experiment is one registered table/figure runner.
	Experiment = experiments.Runner
	// ExperimentConfig scales experiment runs.
	ExperimentConfig = experiments.Config
	// ExperimentReport is a reproduction report with shape checks.
	ExperimentReport = experiments.Report
	// ExperimentRegistry is a catalogue of experiments with id and tag
	// lookup; the package-level registry is what Experiments() serves.
	ExperimentRegistry = experiments.Registry
)

// Experiments returns every registered experiment.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID returns one experiment by id (e.g. "fig3-5").
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }

// ExperimentsByTag returns every experiment carrying the tag (e.g.
// "scenario", "paper").
func ExperimentsByTag(tag string) []Experiment { return experiments.Default.ByTag(tag) }

// ExperimentTags returns the sorted union of registry tags.
func ExperimentTags() []string { return experiments.Default.Tags() }

// quickstart convenience: DetectMovement runs the §2.2.1 detector over a
// whole accelerometer trace and returns the per-report hint values.
func DetectMovement(samples []AccelSample) []bool {
	d := NewMovementDetector(MovementConfig{})
	out := make([]bool, len(samples))
	for i, s := range samples {
		out[i] = d.Update(s)
	}
	return out
}

// DetectionLatency measures how long after ground-truth motion onset the
// detector raises the hint, for a trace whose motion starts at onset.
// It returns −1 if the hint never rises.
func DetectionLatency(samples []AccelSample, onset time.Duration) time.Duration {
	d := NewMovementDetector(MovementConfig{})
	for _, s := range samples {
		if d.Update(s) && s.T >= onset {
			return s.T - onset
		}
	}
	return -1
}
