package sensorhints_test

import (
	"testing"
	"time"

	sensorhints "repro"
)

func TestQuickstartPipeline(t *testing.T) {
	const total = 6 * time.Second
	sched := sensorhints.Schedule{
		{Start: 2 * time.Second, End: 4 * time.Second, Mode: sensorhints.Walk},
	}
	accel := sensorhints.NewAccelerometer(sensorhints.DefaultAccelConfig(), 1)
	samples := accel.Generate(sched, total)
	hintsOut := sensorhints.DetectMovement(samples)
	if len(hintsOut) != len(samples) {
		t.Fatal("hint series length mismatch")
	}
	lat := sensorhints.DetectionLatency(samples, 2*time.Second)
	if lat < 0 || lat > 100*time.Millisecond {
		t.Errorf("detection latency = %v, want ≤ 100 ms", lat)
	}
}

func TestHintProtocolFacade(t *testing.T) {
	f := &sensorhints.Frame{Payload: []byte("data")}
	sensorhints.SetMovementBit(f, true)
	if !sensorhints.MovementBit(f) {
		t.Error("movement bit lost")
	}
	if err := sensorhints.AppendHints(f, []sensorhints.Hint{
		{Type: sensorhints.HintHeading, Value: 90},
	}); err != nil {
		t.Fatal(err)
	}
	hs := sensorhints.ExtractHints(f)
	if len(hs) != 2 { // movement bit + heading trailer
		t.Errorf("extracted %d hints, want 2", len(hs))
	}
}

func TestBusFacade(t *testing.T) {
	bus := sensorhints.NewBus()
	bus.PublishLocal(sensorhints.HintMovement, 1, 0)
	if !bus.MovingLocal() {
		t.Error("bus did not record the local hint")
	}
}

func TestRateSimFacade(t *testing.T) {
	total := 4 * time.Second
	sched := sensorhints.AlternatingSchedule(total, time.Second, sensorhints.Walk, false)
	tr := sensorhints.GenerateTrace(sensorhints.ChannelConfig{
		Env: sensorhints.Office, Sched: sched, Total: total, Seed: 2,
	})
	res := sensorhints.RunRateSim(sensorhints.SimConfig{
		Trace: tr, Adapter: sensorhints.NewHintAwareRate(1), Workload: sensorhints.UDP, Seed: 3,
	})
	if res.ThroughputMbps <= 0 {
		t.Error("no throughput")
	}
}

func TestProbingFacade(t *testing.T) {
	total := 10 * time.Second
	tr := sensorhints.GenerateTrace(sensorhints.ChannelConfig{
		Env:   sensorhints.Office.WithBaseSNR(9),
		Sched: sensorhints.Schedule{{Start: 0, End: total, Mode: sensorhints.Static}},
		Total: total, Seed: 4,
	})
	res := sensorhints.RunProbing(tr, &sensorhints.FixedProbing{PerSecond: 5}, 10, 5)
	if res.Probes == 0 {
		t.Error("no probes sent")
	}
}

func TestVehicularFacade(t *testing.T) {
	sim := sensorhints.NewVehicleSim(sensorhints.DefaultVehicleMobility(1))
	sim.Step()
	if len(sim.Vehicles()) != 100 {
		t.Errorf("%d vehicles", len(sim.Vehicles()))
	}
	if sensorhints.CTE(5) <= sensorhints.CTE(90) {
		t.Error("CTE ordering broken")
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := sensorhints.Experiments()
	if len(exps) != 24 {
		t.Errorf("%d experiments registered, want 24", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		ids[e.ID] = true
	}
	for _, want := range []string{
		"fig2-2", "fig3-1", "fig3-5", "fig3-6", "fig3-7", "fig3-8",
		"fig4-1", "fig4-2", "fig4-3", "fig4-4", "fig4-5", "fig4-6",
		"sec4-2", "table5-1", "sec5-1", "fig5-1", "sec5-2", "sec5-3", "sec5-4", "sec5-6",
		"city-grid", "city-handoff", "city-contend", "scn-oracle",
	} {
		if !ids[want] {
			t.Errorf("experiment %s missing", want)
		}
	}
	if _, ok := sensorhints.ExperimentByID("fig3-5"); !ok {
		t.Error("ByID lookup failed")
	}
	if _, ok := sensorhints.ExperimentByID("nope"); ok {
		t.Error("phantom experiment")
	}
	if city := sensorhints.ExperimentsByTag("city"); len(city) != 3 {
		t.Errorf("%d city-tagged experiments, want 3", len(city))
	}
	if len(sensorhints.ExperimentTags()) == 0 {
		t.Error("no registry tags")
	}
}

func TestScenarioFacade(t *testing.T) {
	sc := sensorhints.Scenario{
		Name: "facade",
		Grid: sensorhints.APGrid{Side: 3, Spacing: 160},
		Herds: []sensorhints.Herd{{
			Name: "walkers", Clients: 20,
			Mobility: sensorhints.MobilityProfile{SpeedMps: 1.4, MeanSegment: 60},
			Traffic:  sensorhints.TrafficMix{{Name: "web", Bytes: 1000, Interval: 200 * time.Millisecond}},
		}},
		Duration: 5 * time.Second,
		Seed:     9,
	}
	ev := sensorhints.RunScenario(sc)
	if ev.Metrics != sensorhints.RunScenarioSlotted(sc).Metrics {
		t.Error("event engine diverged from the slot-driven oracle")
	}
	var merged sensorhints.ScenarioMetrics
	merged.Merge(sensorhints.RunScenarioChunk(sc, 0, 10).Metrics)
	merged.Merge(sensorhints.RunScenarioChunk(sc, 10, 20).Metrics)
	if merged != ev.Metrics {
		t.Error("chunk union diverged from the full run")
	}
	if ev.Metrics.Delivered == 0 || ev.Metrics.Handoffs == 0 {
		t.Errorf("degenerate scenario run: %+v", ev.Metrics)
	}
	city := sensorhints.DefaultCityScenario(1)
	if city.APCount() < 1000 || city.ClientCount() < 100000 {
		t.Errorf("default city too small: %d APs, %d clients", city.APCount(), city.ClientCount())
	}
	eng := sensorhints.NewTimerWheel(time.Millisecond, 64)
	fired := false
	eng.At(5*time.Millisecond, func() { fired = true })
	eng.RunUntil(10 * time.Millisecond)
	if !fired {
		t.Error("timer wheel did not fire")
	}
}
