// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment at a
// scale controlled by -benchtime iterations (every iteration is a full
// reduced-scale reproduction) and reports the experiment's headline
// numbers via b.ReportMetric, so `go test -bench=.` regenerates the
// paper's results table by table.
//
// Ablation benchmarks for the design choices called out in DESIGN.md
// follow the figure benchmarks, and micro-benchmarks for the hot paths
// close the file.
package sensorhints_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/hints"
	"repro/internal/parallel"
	"repro/internal/phy"
	"repro/internal/probing"
	"repro/internal/rate"
	"repro/internal/ratesim"
	"repro/internal/sensors"
	"repro/internal/vehicular"
)

// benchScale keeps full `go test -bench=.` runs tractable while
// preserving every experiment's shape.
const benchScale = 0.25

// runExperiment is the common driver: run the experiment, fail the bench
// on any shape-check violation, and surface each check as a metric
// (1 = pass).
func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	// The seed is fixed so auto-scaled iterations re-run the identical
	// configuration: the benchmark measures cost, the checks assert the
	// deterministic shape.
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = exp.Run(experiments.Config{Scale: benchScale, Seed: 42})
	}
	for _, c := range rep.Checks {
		v := 0.0
		if c.OK {
			v = 1
		}
		b.ReportMetric(v, c.Name+"(ok)")
	}
	if fails := rep.Failed(); len(fails) > 0 {
		b.Fatalf("shape checks failed: %v", fails)
	}
	// Headline rows become metrics.
	for _, row := range rep.Rows {
		if len(row.Values) > 0 {
			b.ReportMetric(row.Values[0], sanitize(row.Label))
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ' || r == '/':
			out = append(out, '_')
		case r == '%':
			out = append(out, 'p')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// --- one benchmark per table and figure ---

func BenchmarkFig2_2_Jerk(b *testing.B)               { runExperiment(b, "fig2-2") }
func BenchmarkFig3_1_ConditionalLoss(b *testing.B)    { runExperiment(b, "fig3-1") }
func BenchmarkFig3_5_HintAwareMixed(b *testing.B)     { runExperiment(b, "fig3-5") }
func BenchmarkFig3_6_Mobile(b *testing.B)             { runExperiment(b, "fig3-6") }
func BenchmarkFig3_7_Static(b *testing.B)             { runExperiment(b, "fig3-7") }
func BenchmarkFig3_8_Vehicular(b *testing.B)          { runExperiment(b, "fig3-8") }
func BenchmarkFig4_1_DeliveryVsMovement(b *testing.B) { runExperiment(b, "fig4-1") }
func BenchmarkFig4_2_StaticProbeError(b *testing.B)   { runExperiment(b, "fig4-2") }
func BenchmarkFig4_3_MobileProbeError(b *testing.B)   { runExperiment(b, "fig4-3") }
func BenchmarkFig4_4_5_TrackingStatic(b *testing.B)   { runExperiment(b, "fig4-4") }
func BenchmarkFig4_4_5_TrackingMobile(b *testing.B)   { runExperiment(b, "fig4-5") }
func BenchmarkFig4_6_AdaptiveProbing(b *testing.B)    { runExperiment(b, "fig4-6") }
func BenchmarkSec4_2_ETXPenalty(b *testing.B)         { runExperiment(b, "sec4-2") }
func BenchmarkTable5_1_LinkDuration(b *testing.B)     { runExperiment(b, "table5-1") }
func BenchmarkSec5_1_RouteStability(b *testing.B)     { runExperiment(b, "sec5-1") }
func BenchmarkFig5_1_APPruning(b *testing.B)          { runExperiment(b, "fig5-1") }
func BenchmarkSec5_2_APPolicies(b *testing.B)         { runExperiment(b, "sec5-2") }
func BenchmarkSec5_3_GuardInterval(b *testing.B)      { runExperiment(b, "sec5-3") }
func BenchmarkSec5_4_PowerSaving(b *testing.B)        { runExperiment(b, "sec5-4") }
func BenchmarkSec5_6_MicrophoneHint(b *testing.B)     { runExperiment(b, "sec5-6") }

// --- parallel trial-engine benchmarks ---
//
// Each benchmark runs one fan-out-heavy experiment at several worker
// counts; comparing ns/op across the workers=N sub-benchmarks gives the
// engine's wall-clock speedup (near-linear until the trial count or the
// CPU count binds). The shape checks still run in every configuration,
// and since reports are bit-identical for any worker count, every
// sub-benchmark asserts the same results.

// benchWorkers runs an experiment at a fixed worker count, failing on
// any shape-check violation.
func benchWorkers(b *testing.B, id string, workers int) {
	b.Helper()
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep = exp.Run(experiments.Config{Scale: benchScale, Seed: 42, Workers: workers})
	}
	if fails := rep.Failed(); len(fails) > 0 {
		b.Fatalf("shape checks failed: %v", fails)
	}
}

// parallelWorkerCounts is the sweep shared by the speedup benchmarks.
var parallelWorkerCounts = []int{1, 2, 4, 8}

func BenchmarkParallelTable5_1_Vehicular(b *testing.B) {
	for _, w := range parallelWorkerCounts {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchWorkers(b, "table5-1", w) })
	}
}

func BenchmarkParallelFig4_3_Probing(b *testing.B) {
	for _, w := range parallelWorkerCounts {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchWorkers(b, "fig4-3", w) })
	}
}

func BenchmarkParallelFig3_8_Rate(b *testing.B) {
	for _, w := range parallelWorkerCounts {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchWorkers(b, "fig3-8", w) })
	}
}

// --- fleet benchmarks: intra-trial sharding across a cluster ---
//
// The BenchmarkFleet* family measures figure-level wall clock for the
// formerly single-trial-bound experiments: workers=1 is the plain
// serial run, workers=N dispatches N shards of the sub-trial grid to an
// N-worker in-process fleet. benchjson derives the fleet speedups from
// the workers=N sub-benchmarks exactly as for the BenchmarkParallel*
// family; BENCH_figures.json records them.

// benchFleet runs one experiment either serially (workers=1) or over an
// in-process fleet with one shard per worker, checking that the report
// stays stable across iterations.
func benchFleet(b *testing.B, id string, workers int) {
	b.Helper()
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	base := ""
	for i := 0; i < b.N; i++ {
		var got string
		if workers == 1 {
			got = exp.Run(experiments.Config{Scale: benchScale, Seed: 42, Workers: 1}).String()
		} else {
			tr := cluster.NewInProcess(workers, func(wi int, c cluster.Conn) {
				cluster.Serve(c, cluster.ServeOptions{Name: fmt.Sprintf("w%d", wi), Workers: 1})
			})
			rep, _, err := cluster.Run(tr, cluster.Options{
				Experiment: id, Seed: 42, Scale: benchScale,
				Shards: workers, ShardWorkers: 1, Retries: 3,
			})
			if err != nil {
				b.Fatalf("cluster run: %v", err)
			}
			got = rep.String()
		}
		if base == "" {
			base = got
		} else if got != base {
			b.Fatal("fleet report drifted between iterations")
		}
	}
}

// fleetWorkerCounts: 1 is the serial baseline the speedups divide by.
var fleetWorkerCounts = []int{1, 2, 4}

func BenchmarkFleetFig3_7_Static(b *testing.B) {
	for _, w := range fleetWorkerCounts {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchFleet(b, "fig3-7", w) })
	}
}

func BenchmarkFleetFig3_5_HintAwareMixed(b *testing.B) {
	for _, w := range fleetWorkerCounts {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchFleet(b, "fig3-5", w) })
	}
}

func BenchmarkFleetFig4_6_AdaptiveProbing(b *testing.B) {
	for _, w := range fleetWorkerCounts {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchFleet(b, "fig4-6", w) })
	}
}

// BenchmarkSeedStream measures per-trial seed derivation — it must stay
// negligible next to any real trial.
func BenchmarkSeedStream(b *testing.B) {
	ss := parallel.NewSeedStream(42)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += ss.Seed(i)
	}
	_ = sink
}

// BenchmarkPoolOverhead measures the fan-out cost of an empty trial: the
// engine's fixed tax on embarrassingly parallel work.
func BenchmarkPoolOverhead(b *testing.B) {
	for _, w := range []int{1, 4} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				parallel.ForEach(w, 64, func(int) {})
			}
		})
	}
}

// --- ablation benchmarks for the DESIGN.md design choices ---

// BenchmarkAblationJerkThreshold sweeps the §2.2.1 jerk threshold and
// reports detection latency and false-positive rate, showing why the
// paper's value of 3 sits in the sweet spot.
func BenchmarkAblationJerkThreshold(b *testing.B) {
	for _, th := range []float64{1, 2, 3, 5, 8} {
		th := th
		b.Run(fmt.Sprintf("threshold=%g", th), func(b *testing.B) {
			var latency time.Duration
			var falsePos float64
			for i := 0; i < b.N; i++ {
				const restA, moveLen, restB = 10 * time.Second, 10 * time.Second, 10 * time.Second
				total := restA + moveLen + restB
				sched := sensors.Schedule{{Start: restA, End: restA + moveLen, Mode: sensors.Walk}}
				acc := sensors.NewAccelerometer(sensors.DefaultAccelConfig(), int64(i+1))
				samples := acc.Generate(sched, total)
				det := hints.NewMovementDetector(hints.MovementConfig{JerkThreshold: th})
				latency = -1
				fpReports := 0
				for _, s := range samples {
					m := det.Update(s)
					if m && latency < 0 && s.T >= restA {
						latency = s.T - restA
					}
					if m && !sched.MovingAt(s.T) && (s.T < restA || s.T > restA+moveLen+200*time.Millisecond) {
						fpReports++
					}
				}
				falsePos = float64(fpReports) / float64(len(samples))
			}
			if latency >= 0 {
				b.ReportMetric(float64(latency.Milliseconds()), "latency_ms")
			} else {
				b.ReportMetric(-1, "latency_ms")
			}
			b.ReportMetric(100*falsePos, "false_positive_pct")
		})
	}
}

// BenchmarkAblationDeltaFail sweeps RapidSample's δ_fail around the
// channel coherence time: throughput should peak when δ_fail matches
// the ~10 ms coherence of the walking channel.
func BenchmarkAblationDeltaFail(b *testing.B) {
	for _, df := range []time.Duration{2 * time.Millisecond, 5 * time.Millisecond,
		10 * time.Millisecond, 40 * time.Millisecond, 160 * time.Millisecond} {
		df := df
		b.Run(fmt.Sprintf("deltaFail=%v", df), func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				total := 10 * time.Second
				sched := sensors.Schedule{{Start: 0, End: total, Mode: sensors.Walk}}
				sum := 0.0
				const reps = 4
				for rep := 0; rep < reps; rep++ {
					tr := channel.Generate(channel.Config{Env: channel.Office, Sched: sched, Total: total, Seed: int64(rep*31 + 1)})
					rs := &rate.RapidSample{DeltaFail: df}
					res := ratesim.Run(ratesim.Config{Trace: tr, Adapter: rs, Workload: ratesim.UDP, Seed: int64(rep + 9)})
					sum += res.ThroughputMbps
				}
				tput = sum / reps
			}
			b.ReportMetric(tput, "Mbps")
		})
	}
}

// BenchmarkAblationOpportunisticJump compares RapidSample's multi-rate
// jump against step-by-one sampling on a mobile channel.
func BenchmarkAblationOpportunisticJump(b *testing.B) {
	for _, stepOnly := range []bool{false, true} {
		stepOnly := stepOnly
		name := "jump"
		if stepOnly {
			name = "step-by-one"
		}
		b.Run(name, func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				total := 10 * time.Second
				sched := sensors.Schedule{{Start: 0, End: total, Mode: sensors.Walk}}
				sum := 0.0
				const reps = 4
				for rep := 0; rep < reps; rep++ {
					tr := channel.Generate(channel.Config{Env: channel.Office, Sched: sched, Total: total, Seed: int64(rep*37 + 5)})
					rs := &rate.RapidSample{StepOnly: stepOnly}
					res := ratesim.Run(ratesim.Config{Trace: tr, Adapter: rs, Workload: ratesim.UDP, Seed: int64(rep + 3)})
					sum += res.ThroughputMbps
				}
				tput = sum / reps
			}
			b.ReportMetric(tput, "Mbps")
		})
	}
}

// BenchmarkAblationProbeLinger evaluates the §4.2 one-second linger
// after movement stops: without it, the estimation window mixes
// pre-stop channel state and the error after stopping grows.
func BenchmarkAblationProbeLinger(b *testing.B) {
	env := channel.Office.WithBaseSNR(9)
	env.WalkShadowSigma = 11
	env.WalkShadowTau = 5 * time.Second
	env.CoherenceTime = 5 * time.Second
	for _, linger := range []time.Duration{time.Millisecond, time.Second, 3 * time.Second} {
		linger := linger
		b.Run(fmt.Sprintf("linger=%v", linger), func(b *testing.B) {
			var postStopErr float64
			for i := 0; i < b.N; i++ {
				total := 40 * time.Second
				sched := sensors.AlternatingSchedule(total, 10*time.Second, sensors.Walk, true)
				tr := channel.Generate(channel.Config{Env: env, Sched: sched, Total: total, Seed: int64(i*17 + 3)})
				hs := &probing.HintScheduler{
					Linger:   linger,
					MovingFn: probing.MovementHintFn(tr, 100*time.Millisecond),
				}
				res := probing.RunScheduler(tr, hs, 10, int64(i+5))
				// Error within 2 s after each movement→static transition.
				var sum float64
				var n int
				for _, smp := range res.Samples {
					if !tr.MovingAt(smp.At) && tr.MovingAt(smp.At-2*time.Second) {
						sum += smp.Error()
						n++
					}
				}
				if n > 0 {
					postStopErr = sum / float64(n)
				}
			}
			b.ReportMetric(postStopErr, "post_stop_err")
		})
	}
}

// BenchmarkAblationCTEAggregation compares min-over-hops (the paper's
// choice) against mean-over-hops for the route CTE metric.
func BenchmarkAblationCTEAggregation(b *testing.B) {
	mob := vehicular.DefaultMobilityConfig(11)
	mob.Vehicles = 120
	// meanSelector ranks candidates by CTE alone; route survival depends
	// on the weakest link, which the min aggregation predicts.
	for _, agg := range []string{"min", "mean"} {
		agg := agg
		b.Run(agg, func(b *testing.B) {
			var med float64
			for i := 0; i < b.N; i++ {
				diffs := [][]float64{
					{4, 8, 6},    // uniformly aligned route
					{2, 2, 85},   // one crossing hop
					{30, 30, 30}, // uniformly mediocre
				}
				// Score each candidate route and measure how well the
				// score predicts the weakest hop (survival time proxy).
				best, bestScore := -1, -1.0
				for ri, ds := range diffs {
					var score float64
					if agg == "min" {
						score = vehicular.RouteCTE(ds)
					} else {
						sum := 0.0
						for _, d := range ds {
							sum += vehicular.CTE(d)
						}
						score = sum / float64(len(ds))
					}
					if score > bestScore {
						best, bestScore = ri, score
					}
				}
				// The weakest-hop CTE of the chosen route is the proxy
				// for its lifetime.
				med = vehicular.RouteCTE(diffs[best])
			}
			b.ReportMetric(med, "weakest_hop_CTE")
		})
	}
}

// --- table-driven fast path vs analytic reference ---
//
// The three benchmarks below carry the before/after evidence for the
// hot-path optimisation: each pairs the retained reference
// implementation (analytic error curves, math/rand) against the
// table-driven path the simulators actually run, so one `go test
// -bench 'DeliveryProb|Generate|RatesimRun'` shows where the speedup
// comes from.

// BenchmarkDeliveryProb compares one SNR→delivery-probability
// evaluation: analytic (Erfc + two Pow) vs the interpolated LUT read.
func BenchmarkDeliveryProb(b *testing.B) {
	b.Run("analytic", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			snr := 5 + float64(i%256)*0.1
			sink += phy.DeliveryProb(phy.Rate(i%phy.NumRates), snr, 1000)
		}
		_ = sink
	})
	b.Run("lut", func(b *testing.B) {
		et := phy.ErrorTableFor(1000)
		var sink float64
		for i := 0; i < b.N; i++ {
			snr := 5 + float64(i%256)*0.1
			sink += et.DeliveryProb(phy.Rate(i%phy.NumRates), snr)
		}
		_ = sink
	})
}

// BenchmarkGenerate compares full 20 s trace generation: the pre-LUT
// reference vs the table-driven generator, plus the buffer-reusing
// GenerateInto the trial pools use (which must report 0 allocs/op).
func BenchmarkGenerate(b *testing.B) {
	sched := sensors.AlternatingSchedule(20*time.Second, 10*time.Second, sensors.Walk, false)
	cfg := channel.Config{Env: channel.Office, Sched: sched, Total: 20 * time.Second, Seed: 7}
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			channel.GenerateReference(cfg)
		}
	})
	b.Run("lut", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			channel.Generate(cfg)
		}
	})
	b.Run("lut-into", func(b *testing.B) {
		tr := channel.Generate(cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			channel.GenerateInto(cfg, tr)
		}
	})
}

// BenchmarkRatesimRun measures one MAC-simulation replay of a 10 s
// mixed trace under both workloads — the per-trial unit of every
// Chapter 3 experiment. Allocations are reported; the inner loop is
// pinned at ~0 by TestRunAllocationFree.
func BenchmarkRatesimRun(b *testing.B) {
	sched := sensors.AlternatingSchedule(10*time.Second, 5*time.Second, sensors.Walk, false)
	tr := channel.Generate(channel.Config{Env: channel.Office, Sched: sched, Total: 10 * time.Second, Seed: 3})
	for _, wl := range []ratesim.Workload{ratesim.UDP, ratesim.TCP} {
		wl := wl
		b.Run(wl.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ratesim.Run(ratesim.Config{Trace: tr, Adapter: rate.NewRapidSample(), Workload: wl, Seed: int64(i)})
			}
		})
	}
}

// --- micro-benchmarks for the hot paths ---

func BenchmarkMovementDetectorUpdate(b *testing.B) {
	acc := sensors.NewAccelerometer(sensors.DefaultAccelConfig(), 1)
	sched := sensors.Schedule{{Start: 0, End: 10 * time.Second, Mode: sensors.Walk}}
	samples := acc.Generate(sched, 10*time.Second)
	det := hints.NewMovementDetector(hints.MovementConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Update(samples[i%len(samples)])
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	sched := sensors.AlternatingSchedule(20*time.Second, 10*time.Second, sensors.Walk, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		channel.Generate(channel.Config{Env: channel.Office, Sched: sched, Total: 20 * time.Second, Seed: int64(i)})
	}
}

func BenchmarkRapidSamplePickObserve(b *testing.B) {
	rs := rate.NewRapidSample()
	at := time.Duration(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rs.PickRate(at)
		rs.Observe(rate.Feedback{At: at, Rate: r, Acked: i%7 != 0, SNR: rate.NoSNR()})
		at += 400 * time.Microsecond
	}
}

func BenchmarkSampleRatePickObserve(b *testing.B) {
	sr := rate.NewSampleRate(1)
	at := time.Duration(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := sr.PickRate(at)
		sr.Observe(rate.Feedback{At: at, Rate: r, Acked: i%7 != 0, SNR: rate.NoSNR()})
		at += 400 * time.Microsecond
	}
}

func BenchmarkMACSimulation(b *testing.B) {
	sched := sensors.AlternatingSchedule(10*time.Second, 5*time.Second, sensors.Walk, false)
	tr := channel.Generate(channel.Config{Env: channel.Office, Sched: sched, Total: 10 * time.Second, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ratesim.Run(ratesim.Config{Trace: tr, Adapter: rate.NewHintAware(int64(i)), Workload: ratesim.TCP, Seed: int64(i)})
	}
}

func BenchmarkVehicularStep(b *testing.B) {
	sim := vehicular.NewSimulation(vehicular.DefaultMobilityConfig(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
}
