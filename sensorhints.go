// Package sensorhints is the public facade of this repository: a Go
// reproduction of "Improving Wireless Network Performance Using Sensor
// Hints" (Ravindranath, Newport, Balakrishnan, Madden — NSDI 2011).
//
// The paper's thesis is that the sensors on commodity mobile devices —
// accelerometer, GPS, compass, gyroscope — can tell the wireless stack
// whether the device is moving, how fast, and in which direction, and
// that protocols which switch strategy on those hints beat protocols
// that infer everything from packet fates alone.
//
// The facade re-exports the pieces a downstream user needs:
//
//   - Hint extraction: MovementDetector (the §2.2.1 jerk algorithm),
//     HeadingEstimator, SpeedEstimator over simulated sensors.
//   - The Hint Protocol: zero-overhead movement bits and (type, value)
//     hint trailers on 802.11-style frames, plus the Bus that routes
//     hints into protocol adapters (Figure 2-1).
//   - Rate adaptation: RapidSample, SampleRate, RRAA, RBAR, CHARM and
//     the hint-aware switcher, with a trace-driven MAC harness.
//   - Topology maintenance: delivery-probability estimation and the
//     hint-adaptive probe scheduler.
//   - Vehicular routing: the CTE metric and road-network simulation.
//   - Experiments: a runner per table/figure of the paper's evaluation.
//
// See examples/ for runnable programs and DESIGN.md for the system
// inventory.
package sensorhints

import (
	"time"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/hintproto"
	"repro/internal/hints"
	"repro/internal/sensors"
)

// Sensor simulation and mobility ground truth.
type (
	// AccelSample is one accelerometer force report.
	AccelSample = sensors.AccelSample
	// Accelerometer synthesizes 2 ms force reports for a schedule.
	Accelerometer = sensors.Accelerometer
	// AccelConfig tunes the synthetic accelerometer.
	AccelConfig = sensors.AccelConfig
	// GPSSample is one GPS fix.
	GPSSample = sensors.GPSSample
	// Schedule is a ground-truth mobility timeline.
	Schedule = sensors.Schedule
	// Episode is one schedule interval.
	Episode = sensors.Episode
	// MobilityMode is static / walk / vehicle.
	MobilityMode = sensors.MobilityMode
)

// Mobility modes.
const (
	Static  = sensors.Static
	Walk    = sensors.Walk
	Vehicle = sensors.Vehicle
)

// NewAccelerometer returns a synthetic accelerometer.
func NewAccelerometer(cfg AccelConfig, seed int64) *Accelerometer {
	return sensors.NewAccelerometer(cfg, seed)
}

// DefaultAccelConfig returns the calibrated accelerometer parameters.
func DefaultAccelConfig() AccelConfig { return sensors.DefaultAccelConfig() }

// AlternatingSchedule builds a static/moving alternation.
func AlternatingSchedule(total, period time.Duration, mode MobilityMode, startMoving bool) Schedule {
	return sensors.AlternatingSchedule(total, period, mode, startMoving)
}

// Hint extraction (§2.2).
type (
	// MovementDetector computes the boolean movement hint from raw
	// accelerometer reports via the jerk statistic.
	MovementDetector = hints.MovementDetector
	// MovementConfig tunes the detector (zero value = paper constants).
	MovementConfig = hints.MovementConfig
	// HeadingEstimator fuses compass, gyro and GPS into a heading hint.
	HeadingEstimator = hints.HeadingEstimator
	// SpeedEstimator produces speed and position hints.
	SpeedEstimator = hints.SpeedEstimator
	// NoiseDetector raises the §5.6 dynamic-environment hint from
	// microphone level reports.
	NoiseDetector = hints.NoiseDetector
	// MicSample is one microphone level report.
	MicSample = sensors.MicSample
	// Microphone synthesizes ambient sound levels.
	Microphone = sensors.Microphone
)

// NewMovementDetector returns a movement detector with the paper's
// parameters when cfg is the zero value.
func NewMovementDetector(cfg MovementConfig) *MovementDetector {
	return hints.NewMovementDetector(cfg)
}

// NewNoiseDetector returns a §5.6 dynamic-environment detector.
func NewNoiseDetector() *NoiseDetector { return hints.NewNoiseDetector() }

// NewMicrophone returns a synthetic microphone.
func NewMicrophone(cfg sensors.MicConfig, seed int64) *Microphone {
	return sensors.NewMicrophone(cfg, seed)
}

// The Hint Protocol (§2.3) and the hint bus (Figure 2-1).
type (
	// Hint is one (type, value) sensor hint.
	Hint = hintproto.Hint
	// HintType identifies the hint kind.
	HintType = hintproto.HintType
	// Frame is the 802.11-style link-layer frame hints ride on.
	Frame = dot11.Frame
	// Addr is a MAC address.
	Addr = dot11.Addr
	// Bus routes local and remote hints to protocol subscribers.
	Bus = core.Bus
	// BusEvent is one hint delivery on the bus.
	BusEvent = core.Event
)

// Hint types.
const (
	HintMovement = hintproto.HintMovement
	HintHeading  = hintproto.HintHeading
	HintSpeed    = hintproto.HintSpeed
)

// NewBus returns an empty hint bus.
func NewBus() *Bus { return core.NewBus() }

// SetMovementBit stuffs the zero-overhead movement hint into a frame.
func SetMovementBit(f *Frame, moving bool) { hintproto.SetMovementBit(f, moving) }

// MovementBit reads the zero-overhead movement hint from a frame.
func MovementBit(f *Frame) bool { return hintproto.MovementBit(f) }

// AppendHints piggy-backs a hint trailer on a data frame.
func AppendHints(f *Frame, hs []Hint) error { return hintproto.AppendTrailer(f, hs) }

// ExtractHints gathers every hint a frame carries.
func ExtractHints(f *Frame) []Hint { return hintproto.ExtractAll(f) }
