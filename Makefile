GO ?= go

.PHONY: all build fmt vet test race bench ci shard-smoke cover fuzz

all: build

build:
	$(GO) build ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiment engine fans trials across goroutines; the race build is
# the gate that keeps it honest. The detector slows the simulations
# ~10×, so the heavy registry-wide tests shrink their scale under the
# race tag and the timeout is raised.
race:
	$(GO) test -race -timeout 45m ./...

# Figure-level and hot-path benchmarks, recorded to BENCH_hotpath.json
# (ns/op plus workers-vs-serial and LUT-vs-analytic speedups) so the
# perf trajectory is tracked in-repo. `make bench-all` additionally runs
# the ablation benchmarks without writing the JSON.
bench:
	$(GO) run ./cmd/benchjson -out BENCH_hotpath.json

bench-all:
	$(GO) test -bench=. -benchtime=1x .

# Cross-process shard parity smoke: run one experiment through
# cmd/hintshard as a 3-shard coordinator (spawning real worker
# processes and merging their serialized partials) and diff the report
# against the single-process hintbench output. Any byte of drift fails.
# The registry-wide version of this check (every experiment, several
# shard counts, in-process) is TestReportsIdenticalAcrossShards.
shard-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o $$tmp/hintshard ./cmd/hintshard && \
	$(GO) build -o $$tmp/hintbench ./cmd/hintbench && \
	$$tmp/hintshard -run fig3-1 -shards 3 -scale 0.2 -seed 42 > $$tmp/sharded.out && \
	$$tmp/hintbench -scale 0.2 -seed 42 fig3-1 > $$tmp/single.out && \
	diff $$tmp/single.out $$tmp/sharded.out && \
	echo "shard-smoke: 3-shard report is bit-identical to the single-process run"

# Coverage summary for the packages that carry the serialization and
# sharding contracts.
cover:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) test -coverprofile=$$tmp/cover.out ./internal/stats/... ./internal/parallel/... && \
	$(GO) tool cover -func=$$tmp/cover.out | tail -n 1

# Short fuzz pass over the stats codecs (each target runs alone, as
# `go test -fuzz` requires).
fuzz:
	$(GO) test -fuzz FuzzAccumulatorCodec -fuzztime 30s ./internal/stats/
	$(GO) test -fuzz FuzzHistogramCodec -fuzztime 30s ./internal/stats/
	$(GO) test -fuzz FuzzSeriesCodec -fuzztime 30s ./internal/stats/

ci: build vet shard-smoke race
