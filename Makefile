GO ?= go

.PHONY: all build fmt vet test race bench ci

all: build

build:
	$(GO) build ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiment engine fans trials across goroutines; the race build is
# the gate that keeps it honest. The detector slows the simulations
# ~10×, so the heavy registry-wide tests shrink their scale under the
# race tag and the timeout is raised.
race:
	$(GO) test -race -timeout 45m ./...

# Figure-level and hot-path benchmarks, recorded to BENCH_hotpath.json
# (ns/op plus workers-vs-serial and LUT-vs-analytic speedups) so the
# perf trajectory is tracked in-repo. `make bench-all` additionally runs
# the ablation benchmarks without writing the JSON.
bench:
	$(GO) run ./cmd/benchjson -out BENCH_hotpath.json

bench-all:
	$(GO) test -bench=. -benchtime=1x .

ci: build vet race
