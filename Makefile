GO ?= go

.PHONY: all build fmt vet test race bench ci

all: build

build:
	$(GO) build ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiment engine fans trials across goroutines; the race build is
# the gate that keeps it honest. The detector slows the simulations
# ~10×, so the heavy registry-wide tests shrink their scale under the
# race tag and the timeout is raised.
race:
	$(GO) test -race -timeout 45m ./...

bench:
	$(GO) test -bench=. -benchtime=1x .

ci: build vet race
