GO ?= go

.PHONY: all build fmt vet test race bench ci shard-smoke cluster-smoke cover fuzz

all: build

build:
	$(GO) build ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiment engine fans trials across goroutines; the race build is
# the gate that keeps it honest. The detector slows the simulations
# ~10×, so the heavy registry-wide tests shrink their scale under the
# race tag and the timeout is raised.
race:
	$(GO) test -race -timeout 45m ./...

# Figure-level and hot-path benchmarks, recorded to BENCH_hotpath.json
# (ns/op plus workers-vs-serial and LUT-vs-analytic speedups) so the
# perf trajectory is tracked in-repo. `make bench-all` additionally runs
# the ablation benchmarks without writing the JSON.
bench:
	$(GO) run ./cmd/benchjson -out BENCH_hotpath.json

bench-all:
	$(GO) test -bench=. -benchtime=1x .

# Cross-process shard parity smoke: run one experiment through
# cmd/hintshard as a 3-shard coordinator (spawning real worker
# processes and merging their serialized partials) and diff the report
# against the single-process hintbench output. Any byte of drift fails.
# The registry-wide version of this check (every experiment, several
# shard counts, in-process) is TestReportsIdenticalAcrossShards.
shard-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o $$tmp/hintshard ./cmd/hintshard && \
	$(GO) build -o $$tmp/hintbench ./cmd/hintbench && \
	$$tmp/hintshard -run fig3-1 -shards 3 -scale 0.2 -seed 42 > $$tmp/sharded.out && \
	$$tmp/hintbench -scale 0.2 -seed 42 fig3-1 > $$tmp/single.out && \
	diff $$tmp/single.out $$tmp/sharded.out && \
	echo "shard-smoke: 3-shard report is bit-identical to the single-process run"

# Work-stealing cluster smoke: a real TCP-loopback coordinator with a
# 6-shard queue and 3 connecting worker processes, one of which is
# deliberately killed mid-shard (it receives an assignment and exits
# without answering, forcing a re-dispatch). The merged report must be
# byte-identical to the single-process hintbench output; the surviving
# workers must exit 0 (they are stopped cleanly, even when they lose a
# speculative race). The registry-wide version of this check (every
# experiment × {inproc, subprocess, tcp} × several worker counts) is
# internal/cluster's determinism tests.
cluster-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/hintshard ./cmd/hintshard || exit 1; \
	$(GO) build -o $$tmp/hintbench ./cmd/hintbench || exit 1; \
	( timeout 240 $$tmp/hintshard -run fig3-1 -shards 6 -listen 127.0.0.1:0 \
		-addr-file $$tmp/addr -scale 0.2 -seed 42 > $$tmp/cluster.out 2> $$tmp/coord.err ) & \
	coord=$$!; \
	for i in $$(seq 100); do [ -s $$tmp/addr ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr ] || { echo "coordinator never published its address"; cat $$tmp/coord.err; exit 1; }; \
	addr=$$(cat $$tmp/addr); \
	$$tmp/hintshard -connect $$addr -die-after-assign 1 2>/dev/null; \
	[ $$? -eq 3 ] || { echo "fault-injected worker did not die with code 3"; exit 1; }; \
	( timeout 240 $$tmp/hintshard -connect $$addr 2> $$tmp/w2.err ) & w2=$$!; \
	( timeout 240 $$tmp/hintshard -connect $$addr 2> $$tmp/w3.err ) & w3=$$!; \
	wait $$coord || { echo "coordinator failed"; cat $$tmp/coord.err; exit 1; }; \
	wait $$w2 || { echo "worker 2 exited non-zero"; cat $$tmp/w2.err; exit 1; }; \
	wait $$w3 || { echo "worker 3 exited non-zero"; cat $$tmp/w3.err; exit 1; }; \
	$$tmp/hintbench -scale 0.2 -seed 42 fig3-1 > $$tmp/single.out || exit 1; \
	diff $$tmp/single.out $$tmp/cluster.out || exit 1; \
	echo "cluster-smoke: TCP run with a killed worker is bit-identical to the single-process run"

# Coverage summary for the packages that carry the serialization and
# sharding contracts.
cover:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) test -coverprofile=$$tmp/cover.out ./internal/stats/... ./internal/parallel/... ./internal/cluster/... && \
	$(GO) tool cover -func=$$tmp/cover.out | tail -n 1

# Short fuzz pass over the stats codecs and the cluster wire layer
# (each target runs alone, as `go test -fuzz` requires).
fuzz:
	$(GO) test -fuzz FuzzAccumulatorCodec -fuzztime 30s ./internal/stats/
	$(GO) test -fuzz FuzzHistogramCodec -fuzztime 30s ./internal/stats/
	$(GO) test -fuzz FuzzSeriesCodec -fuzztime 30s ./internal/stats/
	$(GO) test -fuzz FuzzReadFrame -fuzztime 30s ./internal/stats/
	$(GO) test -fuzz FuzzDecodeMessage -fuzztime 30s ./internal/cluster/

ci: build vet shard-smoke cluster-smoke race
