GO ?= go

.PHONY: all build fmt vet test race bench bench-all bench-check ci shard-smoke cluster-smoke campaign-smoke chaos-smoke hintserve-smoke status-smoke subtrial-smoke scenario-smoke cover fuzz

all: build

build:
	$(GO) build ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The experiment engine fans trials across goroutines; the race build is
# the gate that keeps it honest. The detector slows the simulations
# ~10×, so the heavy registry-wide tests shrink their scale under the
# race tag and the timeout is raised.
race:
	$(GO) test -race -timeout 45m ./...

# Figure-level and hot-path benchmarks, recorded to BENCH_hotpath.json
# (ns/op plus workers-vs-serial and LUT-vs-analytic speedups) so the
# perf trajectory is tracked in-repo. `make bench-all` additionally runs
# the ablation benchmarks without writing the JSON; `make bench-check`
# is the regression gate — it re-runs the hot-path micro-benchmarks,
# writes a fresh BENCH_current.json snapshot (the recorded trajectory is
# left untouched), and fails if any entry regressed more than 25%.
bench:
	$(GO) run ./cmd/benchjson -out BENCH_hotpath.json
	$(GO) run ./cmd/benchjson -out BENCH_hintserve.json \
		-bench 'HintServeUDP' -benchtime 1x \
		-microbench 'HintServeBatch' -microtime 200ms
	$(GO) run ./cmd/benchjson -out BENCH_figures.json \
		-bench 'BenchmarkFleet' -benchtime 1x \
		-microbench '^$$' -microtime 1x
	$(GO) run ./cmd/benchjson -out BENCH_scenario.json \
		-bench 'BenchmarkScenarioCity' -benchtime 1x \
		-microbench 'BenchmarkScenarioIdle|BenchmarkTimerWheel' -microtime 200ms

bench-all:
	$(GO) test -bench=. -benchtime=1x .

bench-check:
	$(GO) run ./cmd/benchjson -check BENCH_hotpath.json -out BENCH_current.json
	$(GO) run ./cmd/benchjson -check BENCH_hintserve.json -out BENCH_hintserve_current.json \
		-microbench 'HintServeBatch' -microtime 200ms
	$(GO) run ./cmd/benchjson -check BENCH_figures.json -out BENCH_figures_current.json \
		-microbench 'BenchmarkFleet' -microtime 1x
	$(GO) run ./cmd/benchjson -check BENCH_scenario.json -out BENCH_scenario_current.json \
		-microbench 'BenchmarkScenarioIdle|BenchmarkTimerWheel' -microtime 200ms

# Cross-process shard parity smoke: run one experiment through
# cmd/hintshard as a 3-shard coordinator (spawning real worker
# processes and merging their serialized partials) and diff the report
# against the single-process hintbench output. Any byte of drift fails.
# The registry-wide version of this check (every experiment, several
# shard counts, in-process) is TestReportsIdenticalAcrossShards.
shard-smoke:
	@tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
	$(GO) build -o "$$tmp/hintshard" ./cmd/hintshard && \
	$(GO) build -o "$$tmp/hintbench" ./cmd/hintbench && \
	"$$tmp/hintshard" -run fig3-1 -shards 3 -scale 0.2 -seed 42 > "$$tmp/sharded.out" && \
	"$$tmp/hintbench" -scale 0.2 -seed 42 fig3-1 > "$$tmp/single.out" && \
	diff "$$tmp/single.out" "$$tmp/sharded.out" && \
	echo "shard-smoke: 3-shard report is bit-identical to the single-process run"

# Work-stealing cluster smoke: a real TCP-loopback coordinator with a
# 6-shard queue and 3 connecting worker processes, one of which is
# deliberately killed mid-shard (it receives an assignment and exits
# without answering, forcing a re-dispatch). The merged report must be
# byte-identical to the single-process hintbench output; the surviving
# workers must exit 0 (they are stopped cleanly, even when they lose a
# speculative race). The addr-file wait loop fails fast with the
# coordinator's stderr if the coordinator dies before publishing its
# address. The registry-wide version of this check (every experiment ×
# {inproc, subprocess, tcp} × several worker counts) is
# internal/cluster's determinism tests.
cluster-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/hintshard" ./cmd/hintshard || exit 1; \
	$(GO) build -o "$$tmp/hintbench" ./cmd/hintbench || exit 1; \
	( timeout 240 "$$tmp/hintshard" -run fig3-1 -shards 6 -listen 127.0.0.1:0 \
		-addr-file "$$tmp/addr" -scale 0.2 -seed 42 > "$$tmp/cluster.out" 2> "$$tmp/coord.err" ) & \
	coord=$$!; \
	for i in $$(seq 100); do \
		[ -s "$$tmp/addr" ] && break; \
		kill -0 $$coord 2>/dev/null || break; \
		sleep 0.1; \
	done; \
	[ -s "$$tmp/addr" ] || { echo "coordinator never published its address:"; cat "$$tmp/coord.err"; exit 1; }; \
	addr=$$(cat "$$tmp/addr"); \
	"$$tmp/hintshard" -connect "$$addr" -die-after-assign 1 2>/dev/null; \
	[ $$? -eq 3 ] || { echo "fault-injected worker did not die with code 3"; exit 1; }; \
	( timeout 240 "$$tmp/hintshard" -connect "$$addr" 2> "$$tmp/w2.err" ) & w2=$$!; \
	( timeout 240 "$$tmp/hintshard" -connect "$$addr" 2> "$$tmp/w3.err" ) & w3=$$!; \
	wait $$coord || { echo "coordinator failed:"; cat "$$tmp/coord.err"; exit 1; }; \
	wait $$w2 || { echo "worker 2 exited non-zero:"; cat "$$tmp/w2.err"; exit 1; }; \
	wait $$w3 || { echo "worker 3 exited non-zero:"; cat "$$tmp/w3.err"; exit 1; }; \
	"$$tmp/hintbench" -scale 0.2 -seed 42 fig3-1 > "$$tmp/single.out" || exit 1; \
	diff "$$tmp/single.out" "$$tmp/cluster.out" || exit 1; \
	echo "cluster-smoke: TCP run with a killed worker is bit-identical to the single-process run"

# Campaign smoke: a real TCP-loopback fleet runs a 3-experiment campaign
# through one warm coordinator, with verification sampling on and one
# worker killed mid-campaign (it completes its first assignment, then
# dies holding its second, forcing a re-dispatch while later jobs are
# already queued). Each report — written by -report-dir in submission
# order — must be byte-identical to the standalone hintbench output of
# the same (experiment, scale, seed). The registry-level version of this
# check is internal/campaign's determinism tests.
campaign-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/hintshard" ./cmd/hintshard || exit 1; \
	$(GO) build -o "$$tmp/hintbench" ./cmd/hintbench || exit 1; \
	( timeout 240 "$$tmp/hintshard" -campaign -shards 5 -scale 0.2 -seed 42 \
		-listen 127.0.0.1:0 -addr-file "$$tmp/addr" -verify 0.4 -report-dir "$$tmp/reports" \
		fig2-2 fig3-1 fig5-1:seed=7 > "$$tmp/campaign.out" 2> "$$tmp/coord.err" ) & \
	coord=$$!; \
	for i in $$(seq 100); do \
		[ -s "$$tmp/addr" ] && break; \
		kill -0 $$coord 2>/dev/null || break; \
		sleep 0.1; \
	done; \
	[ -s "$$tmp/addr" ] || { echo "campaign coordinator never published its address:"; cat "$$tmp/coord.err"; exit 1; }; \
	addr=$$(cat "$$tmp/addr"); \
	"$$tmp/hintshard" -connect "$$addr" -die-after-assign 2 2>/dev/null; \
	[ $$? -eq 3 ] || { echo "fault-injected worker did not die with code 3"; exit 1; }; \
	( timeout 240 "$$tmp/hintshard" -connect "$$addr" 2> "$$tmp/w2.err" ) & w2=$$!; \
	( timeout 240 "$$tmp/hintshard" -connect "$$addr" 2> "$$tmp/w3.err" ) & w3=$$!; \
	wait $$coord || { echo "campaign coordinator failed:"; cat "$$tmp/coord.err"; exit 1; }; \
	wait $$w2 || { echo "worker 2 exited non-zero:"; cat "$$tmp/w2.err"; exit 1; }; \
	wait $$w3 || { echo "worker 3 exited non-zero:"; cat "$$tmp/w3.err"; exit 1; }; \
	"$$tmp/hintbench" -scale 0.2 -seed 42 fig2-2 > "$$tmp/single1.out" || exit 1; \
	"$$tmp/hintbench" -scale 0.2 -seed 42 fig3-1 > "$$tmp/single2.out" || exit 1; \
	"$$tmp/hintbench" -scale 0.2 -seed 7 fig5-1 > "$$tmp/single3.out" || exit 1; \
	diff "$$tmp/single1.out" "$$tmp/reports/job1-fig2-2.out" || exit 1; \
	diff "$$tmp/single2.out" "$$tmp/reports/job2-fig3-1.out" || exit 1; \
	diff "$$tmp/single3.out" "$$tmp/reports/job3-fig5-1.out" || exit 1; \
	echo "campaign-smoke: 3-experiment TCP campaign with a killed worker: every report bit-identical to hintbench"

# Chaos smoke: the hardened transport proven over real TCP under real
# faults. The coordinator's -chaos-plan drops, duplicates, delays, and
# hard-partitions its own outbound frames (the first three conns; kills
# capped so the run converges), and one of the three workers corrupts
# its outbound frames — so the rolling CRC32C chain, the heartbeat
# reaper, shard requeue, and worker reconnect are all exercised in one
# campaign. Worker exit codes are deliberately not gated: a worker whose
# final Stop was eaten by a fault exits non-zero by design. The
# coordinator's exit code and the byte-for-byte report diffs against
# hintbench are the assertions.
chaos-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/hintshard" ./cmd/hintshard || exit 1; \
	$(GO) build -o "$$tmp/hintbench" ./cmd/hintbench || exit 1; \
	( timeout 240 "$$tmp/hintshard" -campaign -shards 5 -scale 0.2 -seed 42 \
		-listen 127.0.0.1:0 -addr-file "$$tmp/addr" -report-dir "$$tmp/reports" \
		-retries 12 -heartbeat 100ms -heartbeat-misses 20 \
		-chaos-seed 7 -chaos-plan "drop=0.05,dup=0.05,delay=0.2:2ms,partition=8,conns=6,kills=6" \
		-v fig2-2 fig3-1 > "$$tmp/campaign.out" 2> "$$tmp/coord.err" ) & \
	coord=$$!; \
	for i in $$(seq 100); do \
		[ -s "$$tmp/addr" ] && break; \
		kill -0 $$coord 2>/dev/null || break; \
		sleep 0.1; \
	done; \
	[ -s "$$tmp/addr" ] || { echo "chaos coordinator never published its address:"; cat "$$tmp/coord.err"; exit 1; }; \
	addr=$$(cat "$$tmp/addr"); \
	( timeout 240 "$$tmp/hintshard" -connect "$$addr" -reconnect 10 \
		-chaos-seed 99 -chaos-plan "corrupt=0.2,kills=2" -v 2> "$$tmp/w1.err" ) & w1=$$!; \
	( timeout 240 "$$tmp/hintshard" -connect "$$addr" -reconnect 10 -v 2> "$$tmp/w2.err" ) & w2=$$!; \
	( timeout 240 "$$tmp/hintshard" -connect "$$addr" -reconnect 10 -v 2> "$$tmp/w3.err" ) & w3=$$!; \
	wait $$coord || { echo "chaos campaign coordinator failed:"; \
		cat "$$tmp/coord.err" "$$tmp/w1.err" "$$tmp/w2.err" "$$tmp/w3.err" 2>/dev/null; exit 1; }; \
	kill $$w1 $$w2 $$w3 2>/dev/null; wait $$w1 $$w2 $$w3 2>/dev/null; \
	"$$tmp/hintbench" -scale 0.2 -seed 42 fig2-2 > "$$tmp/single1.out" || exit 1; \
	"$$tmp/hintbench" -scale 0.2 -seed 42 fig3-1 > "$$tmp/single2.out" || exit 1; \
	diff "$$tmp/single1.out" "$$tmp/reports/job1-fig2-2.out" || exit 1; \
	diff "$$tmp/single2.out" "$$tmp/reports/job2-fig3-1.out" || exit 1; \
	grep -q "reconnecting" "$$tmp/w1.err" "$$tmp/w2.err" "$$tmp/w3.err" || { \
		echo "chaos-smoke passed but no injected fault forced a reconnect -- the plan is vacuous:"; \
		cat "$$tmp/coord.err" "$$tmp/w1.err" "$$tmp/w2.err" "$$tmp/w3.err" 2>/dev/null; exit 1; }; \
	echo "chaos-smoke: campaign under drops, dups, delays, partitions, and a corrupting worker: faults fired, sessions reconnected, every report bit-identical to hintbench"

# Control-plane smoke over real TCP, in two deterministic phases.
# Phase 1, before any worker connects (so no dispatch can race the
# mutations): scrape /status through the one-shot client, submit one
# job, submit-then-cancel another, reject a bogus cancel, and check the
# submitted/cancelled counters on /metrics. Phase 2: connect two
# workers and poll the live endpoint until a worker row shows nonzero
# streamed loops — proof the status plane observes the fleet mid-run.
# The second campaign job is deliberately heavy (fig3-5 at scale 0.5)
# so that window is wide. Finally every report — including the job
# submitted over HTTP — must be byte-identical to standalone hintbench,
# and the cancelled job must have written none. The whole exchange runs
# with a session token: the same -token that authenticates the workers'
# handshakes signs the HTTP mutations, an unsigned submit must be
# answered 401, and the read-only endpoints stay open.
status-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/hintshard" ./cmd/hintshard || exit 1; \
	$(GO) build -o "$$tmp/hintbench" ./cmd/hintbench || exit 1; \
	( timeout 240 "$$tmp/hintshard" -campaign -shards 3 -scale 0.2 -seed 42 \
		-listen 127.0.0.1:0 -addr-file "$$tmp/addr" -token s3cr3t \
		-status-addr 127.0.0.1:0 -status-addr-file "$$tmp/saddr" \
		-report-dir "$$tmp/reports" \
		fig2-2 fig3-5:scale=0.5:shards=4 > "$$tmp/campaign.out" 2> "$$tmp/coord.err" ) & \
	coord=$$!; \
	for i in $$(seq 100); do \
		[ -s "$$tmp/addr" ] && [ -s "$$tmp/saddr" ] && break; \
		kill -0 $$coord 2>/dev/null || break; \
		sleep 0.1; \
	done; \
	[ -s "$$tmp/saddr" ] || { echo "coordinator never published its control-plane address:"; cat "$$tmp/coord.err"; exit 1; }; \
	addr=$$(cat "$$tmp/addr"); saddr=$$(cat "$$tmp/saddr"); \
	"$$tmp/hintshard" -status "$$saddr" > "$$tmp/st1.out" || { echo "status scrape failed"; cat "$$tmp/coord.err"; exit 1; }; \
	grep -q "workers: none connected yet" "$$tmp/st1.out" || { echo "expected an empty fleet in phase 1:"; cat "$$tmp/st1.out"; exit 1; }; \
	if "$$tmp/hintshard" -status "$$saddr" -submit fig3-1:seed=7:shards=2 > /dev/null 2> "$$tmp/unauth.err"; then \
		echo "unsigned submit succeeded against a token-gated control plane"; exit 1; fi; \
	grep -q "401" "$$tmp/unauth.err" || { echo "unsigned submit did not answer 401:"; cat "$$tmp/unauth.err"; exit 1; }; \
	"$$tmp/hintshard" -status "$$saddr" -token s3cr3t -submit fig3-1:seed=7:shards=2 | grep -q '"job": 2' || { echo "submit did not yield job 2"; exit 1; }; \
	"$$tmp/hintshard" -status "$$saddr" -token s3cr3t -submit fig2-2:seed=9:shards=2 | grep -q '"job": 3' || { echo "second submit did not yield job 3"; exit 1; }; \
	"$$tmp/hintshard" -status "$$saddr" -token s3cr3t -cancel 3 > /dev/null || { echo "cancel of job 3 failed"; exit 1; }; \
	if "$$tmp/hintshard" -status "$$saddr" -token s3cr3t -cancel 17 2>/dev/null; then echo "cancel of a nonexistent job succeeded"; exit 1; fi; \
	"$$tmp/hintshard" -status "$$saddr" > "$$tmp/st2.out" || exit 1; \
	grep -q "job=3 .*state=cancelled" "$$tmp/st2.out" || { echo "cancelled job not shown cancelled:"; cat "$$tmp/st2.out"; exit 1; }; \
	"$$tmp/hintshard" -status "$$saddr" -metrics > "$$tmp/metrics.out" || exit 1; \
	grep -q "hintshard_jobs_submitted_total 2" "$$tmp/metrics.out" || { echo "submitted counter wrong:"; cat "$$tmp/metrics.out"; exit 1; }; \
	grep -q "hintshard_jobs_cancelled_total 1" "$$tmp/metrics.out" || { echo "cancelled counter wrong:"; cat "$$tmp/metrics.out"; exit 1; }; \
	( timeout 240 "$$tmp/hintshard" -connect "$$addr" -token s3cr3t 2> "$$tmp/w1.err" ) & w1=$$!; \
	( timeout 240 "$$tmp/hintshard" -connect "$$addr" -token s3cr3t 2> "$$tmp/w2.err" ) & w2=$$!; \
	live=0; \
	for i in $$(seq 400); do \
		"$$tmp/hintshard" -status "$$saddr" > "$$tmp/live.out" 2>/dev/null || break; \
		grep -Eq "worker=.* loops=[1-9]" "$$tmp/live.out" && { live=1; break; }; \
		kill -0 $$coord 2>/dev/null || break; \
	done; \
	[ "$$live" = 1 ] || { echo "never observed a worker with nonzero live throughput:"; cat "$$tmp/live.out" "$$tmp/coord.err" 2>/dev/null; exit 1; }; \
	wait $$coord || { echo "campaign coordinator failed:"; cat "$$tmp/coord.err"; exit 1; }; \
	wait $$w1 || { echo "worker 1 exited non-zero:"; cat "$$tmp/w1.err"; exit 1; }; \
	wait $$w2 || { echo "worker 2 exited non-zero:"; cat "$$tmp/w2.err"; exit 1; }; \
	"$$tmp/hintbench" -scale 0.2 -seed 42 fig2-2 > "$$tmp/single1.out" || exit 1; \
	"$$tmp/hintbench" -scale 0.5 -seed 42 fig3-5 > "$$tmp/single2.out" || exit 1; \
	"$$tmp/hintbench" -scale 0.2 -seed 7 fig3-1 > "$$tmp/single3.out" || exit 1; \
	diff "$$tmp/single1.out" "$$tmp/reports/job1-fig2-2.out" || exit 1; \
	diff "$$tmp/single2.out" "$$tmp/reports/job2-fig3-5.out" || exit 1; \
	diff "$$tmp/single3.out" "$$tmp/reports/job3-fig3-1.out" || exit 1; \
	[ ! -e "$$tmp/reports/job4-fig2-2.out" ] || { echo "cancelled job wrote a report"; exit 1; }; \
	echo "status-smoke: live scrape, HTTP submit and cancel took effect, reports bit-identical to hintbench"

# Intra-trial sharding smoke: fig3-7 — a formerly single-trial-bound
# experiment whose trial space is now a sub-trial grid of
# protocol×env×repetition cells — runs as 4 shards over a real
# TCP-loopback fleet of 3 worker processes, and the merged report must
# be byte-identical to the single-process hintbench run. The Go-level
# version of this check (dispatch spread, mid-sub-trial worker kill,
# every sub-trial experiment) is internal/cluster's subtrial tests.
subtrial-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/hintshard" ./cmd/hintshard || exit 1; \
	$(GO) build -o "$$tmp/hintbench" ./cmd/hintbench || exit 1; \
	( timeout 240 "$$tmp/hintshard" -run fig3-7 -shards 4 -listen 127.0.0.1:0 \
		-addr-file "$$tmp/addr" -scale 0.2 -seed 42 > "$$tmp/fleet.out" 2> "$$tmp/coord.err" ) & \
	coord=$$!; \
	for i in $$(seq 100); do \
		[ -s "$$tmp/addr" ] && break; \
		kill -0 $$coord 2>/dev/null || break; \
		sleep 0.1; \
	done; \
	[ -s "$$tmp/addr" ] || { echo "coordinator never published its address:"; cat "$$tmp/coord.err"; exit 1; }; \
	addr=$$(cat "$$tmp/addr"); \
	( timeout 240 "$$tmp/hintshard" -connect "$$addr" 2> "$$tmp/w1.err" ) & w1=$$!; \
	( timeout 240 "$$tmp/hintshard" -connect "$$addr" 2> "$$tmp/w2.err" ) & w2=$$!; \
	( timeout 240 "$$tmp/hintshard" -connect "$$addr" 2> "$$tmp/w3.err" ) & w3=$$!; \
	wait $$coord || { echo "coordinator failed:"; cat "$$tmp/coord.err"; exit 1; }; \
	wait $$w1 || { echo "worker 1 exited non-zero:"; cat "$$tmp/w1.err"; exit 1; }; \
	wait $$w2 || { echo "worker 2 exited non-zero:"; cat "$$tmp/w2.err"; exit 1; }; \
	wait $$w3 || { echo "worker 3 exited non-zero:"; cat "$$tmp/w3.err"; exit 1; }; \
	"$$tmp/hintbench" -scale 0.2 -seed 42 fig3-7 > "$$tmp/single.out" || exit 1; \
	diff "$$tmp/single.out" "$$tmp/fleet.out" || exit 1; \
	echo "subtrial-smoke: fig3-7 fanned across a 3-worker TCP fleet is bit-identical to the single-process run"

# Scenario-engine smoke: the scn-oracle experiment is the differential
# gate — its shape checks require the event engine to match the
# slot-driven oracles byte-for-byte (Metrics, the MAC replay ports, the
# chunk-union property) and statistically where engines interleave —
# and a city-grid run fanned over a real 3-worker fleet must be
# bit-identical to the single-process report, proving one city trial
# shards across workers by client chunk.
scenario-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/hintshard" ./cmd/hintshard || exit 1; \
	$(GO) build -o "$$tmp/hintbench" ./cmd/hintbench || exit 1; \
	"$$tmp/hintbench" -scale 0.2 -seed 42 scn-oracle > "$$tmp/oracle.out" || \
		{ echo "scenario-smoke: oracle differentials failed"; cat "$$tmp/oracle.out"; exit 1; }; \
	"$$tmp/hintshard" -run city-grid -shards 3 -scale 0.2 -seed 42 > "$$tmp/sharded.out" || exit 1; \
	"$$tmp/hintbench" -scale 0.2 -seed 42 city-grid > "$$tmp/single.out" || exit 1; \
	diff "$$tmp/single.out" "$$tmp/sharded.out" || exit 1; \
	echo "scenario-smoke: oracle differentials passed; 3-shard city run bit-identical to the single process"

# Coverage floors for the packages that carry the serialization,
# sharding, scheduling, and campaign contracts — roughly five points
# under the measured totals (stats 89.4, parallel 96.8, cluster 88.8,
# campaign 98.9 at the time of recording), so genuine coverage loss
# fails while run-to-run scheduling variance does not. Raise a floor
# when its package's coverage rises for good.
COVER_FLOORS = stats:84 parallel:92 cluster:83 campaign:93

# Per-package coverage summary for the contract-bearing packages,
# enforced against COVER_FLOORS.
cover:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) test -cover ./internal/stats/ ./internal/parallel/ ./internal/cluster/ ./internal/campaign/ > "$$tmp/cover.txt" || { cat "$$tmp/cover.txt"; exit 1; }; \
	cat "$$tmp/cover.txt"; \
	status=0; \
	for spec in $(COVER_FLOORS); do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		pct=$$(awk -v p="repro/internal/$$pkg" '$$1 == "ok" && $$2 == p { for (i = 3; i <= NF; i++) if ($$i == "coverage:") { gsub(/%/, "", $$(i+1)); print $$(i+1) } }' "$$tmp/cover.txt"); \
		if [ -z "$$pct" ]; then echo "cover: no coverage line for internal/$$pkg"; status=1; continue; fi; \
		if awk -v p="$$pct" -v f="$$floor" 'BEGIN { exit !(p >= f) }'; then \
			echo "cover: internal/$$pkg $$pct% (floor $$floor%)"; \
		else \
			echo "cover: internal/$$pkg $$pct% is BELOW the $$floor% floor"; status=1; \
		fi; \
	done; \
	exit $$status

# Short fuzz pass over the stats codecs, the cluster wire layer
# (framing, message decoding, the session handshake), and the hint
# protocol parsers (each target runs alone, as `go test -fuzz`
# requires). CI runs the same targets at a reduced FUZZTIME.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz FuzzAccumulatorCodec -fuzztime $(FUZZTIME) ./internal/stats/
	$(GO) test -fuzz FuzzHistogramCodec -fuzztime $(FUZZTIME) ./internal/stats/
	$(GO) test -fuzz FuzzSeriesCodec -fuzztime $(FUZZTIME) ./internal/stats/
	$(GO) test -fuzz 'FuzzReadFrame$$' -fuzztime $(FUZZTIME) ./internal/stats/
	$(GO) test -fuzz FuzzReadFrameSum -fuzztime $(FUZZTIME) ./internal/stats/
	$(GO) test -fuzz FuzzDecodeMessage -fuzztime $(FUZZTIME) ./internal/cluster/
	$(GO) test -fuzz FuzzHandshake -fuzztime $(FUZZTIME) ./internal/cluster/
	$(GO) test -fuzz FuzzParseTrailer -fuzztime $(FUZZTIME) ./internal/hintproto/
	$(GO) test -fuzz FuzzParseHintFrame -fuzztime $(FUZZTIME) ./internal/hintproto/
	$(GO) test -fuzz FuzzFateTraceCodec -fuzztime $(FUZZTIME) ./internal/trace/
	$(GO) test -fuzz FuzzDecodePartial -fuzztime $(FUZZTIME) ./internal/experiments/

# Hint-serving-plane smoke over real UDP: boot a hintnode AP, throw a
# hintload herd at it, kill the herd mid-run (its ACKs now hit dead
# sockets), then require a second herd to be served cleanly — the plane
# must survive vanishing clients and transient write errors. hintload
# exits non-zero when a run gets no ACKs, so the second run's exit code
# is the assertion.
hintserve-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/hintnode" ./cmd/hintnode || exit 1; \
	$(GO) build -o "$$tmp/hintload" ./cmd/hintload || exit 1; \
	( timeout 180 "$$tmp/hintnode" -listen 127.0.0.1:0 -addr-file "$$tmp/addr" \
		-stats 0 > "$$tmp/ap.out" 2>&1 ) & \
	ap=$$!; \
	for i in $$(seq 100); do \
		[ -s "$$tmp/addr" ] && break; \
		kill -0 $$ap 2>/dev/null || break; \
		sleep 0.1; \
	done; \
	[ -s "$$tmp/addr" ] || { echo "hintserve-smoke: AP never published its address"; cat "$$tmp/ap.out"; exit 1; }; \
	addr=$$(cat "$$tmp/addr"); \
	( timeout 120 "$$tmp/hintload" -target "$$addr" -clients 400 -packets 200000 \
		-senders 2 > "$$tmp/load1.out" 2>&1 ) & \
	herd=$$!; \
	sleep 1; kill -9 $$herd 2>/dev/null; wait $$herd 2>/dev/null; \
	timeout 120 "$$tmp/hintload" -target "$$addr" -clients 400 -first-client 1000 \
		-packets 20000 -corrupt 0.02 -senders 2 > "$$tmp/load2.out" 2>&1 || \
		{ echo "hintserve-smoke: post-kill herd failed"; cat "$$tmp/load2.out" "$$tmp/ap.out"; exit 1; }; \
	kill $$ap 2>/dev/null; wait $$ap 2>/dev/null; \
	cat "$$tmp/load2.out"; \
	echo "hintserve-smoke: plane survived a herd killed mid-run and kept serving"

ci: build vet shard-smoke subtrial-smoke scenario-smoke cluster-smoke campaign-smoke chaos-smoke hintserve-smoke status-smoke race
